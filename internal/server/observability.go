package server

import (
	"sort"
	"time"

	"schedfilter/internal/codecache"
	"schedfilter/internal/obs"
)

// serverObs is the server's registration on the shared obs registry:
// per-endpoint request counters, latency sum/max (the historical
// lines) plus request-latency and per-phase histograms (the new ones),
// the scheduling-pass totals, and render-time gauges over the caches,
// pool, and online loop. Handles are resolved here, once, so the
// request path records through atomics only.
type serverObs struct {
	reg   *obs.Registry
	start time.Time
	eps   map[string]*epMetrics
	phase map[string]*obs.Histogram

	// Scheduling-pass totals across schedule and execute requests.
	// schedulerRuns counts actual list-scheduler invocations (cache
	// misses); a fully cached request adds zero — the counter the load
	// generator asserts on.
	blocksSeen      *obs.Counter
	blocksScheduled *obs.Counter
	schedulerRuns   *obs.Counter
	cacheHits       *obs.Counter
	schedNs         *obs.Counter

	// throwaway absorbs records against unknown endpoint names.
	throwaway *epMetrics
}

// epMetrics are one endpoint's handles.
type epMetrics struct {
	ok        *obs.Counter // 2xx responses
	clientErr *obs.Counter // 4xx other than 429
	rejected  *obs.Counter // 429 (queue full)
	serverErr *obs.Counter // 5xx
	// Successful-response latency: historical sum/max lines plus the
	// histogram percentiles feed on.
	latencySum *obs.Counter
	latencyMax *obs.Max
	latency    *obs.Histogram
}

// record tallies one response, mirroring the historical outcome split.
func (e *epMetrics) record(status int, elapsed time.Duration) {
	switch {
	case status == 429:
		e.rejected.Inc()
	case status >= 500:
		e.serverErr.Inc()
	case status >= 400:
		e.clientErr.Inc()
	default:
		e.ok.Inc()
		ns := elapsed.Nanoseconds()
		e.latencySum.Add(ns)
		e.latencyMax.Observe(ns)
		e.latency.Observe(ns)
	}
}

// serverPhases are the span names this layer can observe (route is the
// gateway's).
var serverPhases = []string{
	obs.PhaseQueueWait, obs.PhaseCompile, obs.PhaseCacheLookup,
	obs.PhaseDAGBuild, obs.PhaseListSchedule, obs.PhaseEstimator, obs.PhaseSim,
}

// newServerObs registers every server metric. Call after the server's
// targets, pool, flight, and online loop exist — the gauges read them
// live at render time. The historical metric names (schedserved_*,
// codecache_*, online_*) are locked byte-for-byte by the compat test.
func newServerObs(s *Server, endpoints ...string) *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:   reg,
		start: time.Now(),
		eps:   make(map[string]*epMetrics, len(endpoints)),
		phase: make(map[string]*obs.Histogram, len(serverPhases)),
	}
	sorted := append([]string(nil), endpoints...)
	sort.Strings(sorted)
	newEp := func(name string) *epMetrics {
		l := obs.L("endpoint", name)
		return &epMetrics{
			ok:        reg.Counter("schedserved_requests_total", "Requests by endpoint and outcome.", l, obs.L("outcome", "ok")),
			clientErr: reg.Counter("schedserved_requests_total", "", l, obs.L("outcome", "client_error")),
			rejected:  reg.Counter("schedserved_requests_total", "", l, obs.L("outcome", "rejected")),
			serverErr: reg.Counter("schedserved_requests_total", "", l, obs.L("outcome", "server_error")),
			latencySum: reg.Counter("schedserved_latency_ns_sum",
				"Summed handler latency of successful responses.", l),
			latencyMax: reg.Max("schedserved_latency_ns_max", "Max handler latency of successful responses.", l),
			latency: reg.Histogram("schedserved_request_latency_ns",
				"Handler latency of successful responses.", nil, l),
		}
	}
	for _, name := range sorted {
		o.eps[name] = newEp(name)
	}
	for _, ph := range serverPhases {
		o.phase[ph] = reg.Histogram("schedserved_phase_ns",
			"Per-phase request time from traced spans.", nil, obs.L("phase", ph))
	}

	o.blocksSeen = reg.Counter("schedserved_sched_blocks_seen_total", "Scheduling-pass totals across requests.")
	o.blocksScheduled = reg.Counter("schedserved_sched_blocks_scheduled_total", "")
	o.schedulerRuns = reg.Counter("schedserved_scheduler_runs_total", "")
	o.cacheHits = reg.Counter("schedserved_sched_cache_hits_total", "")
	o.schedNs = reg.Counter("schedserved_sched_time_ns_total", "")

	caches := make([]*codecache.Cache, 0, len(s.order))
	for _, name := range s.order {
		caches = append(caches, s.targets[name].cache)
	}
	codecache.RegisterMetrics(reg, &s.flight, caches...)
	for _, name := range s.order {
		s.targets[name].cache.RegisterTargetMetrics(reg, name)
	}

	if s.online != nil {
		s.online.RegisterMetrics(reg)
	}

	if s.cfg.Node != "" {
		reg.GaugeFunc("schedserved_node_info", "Instance identity.",
			func() int64 { return 1 }, obs.L("node", s.cfg.Node))
	}
	reg.GaugeFunc("schedserved_draining", "1 while shutdown drain is advertised.", func() int64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("schedserved_pool_workers", "Worker-pool gauges.",
		func() int64 { return int64(s.cfg.Workers) })
	reg.GaugeFunc("schedserved_pool_queue_capacity", "",
		func() int64 { return int64(s.cfg.QueueDepth) })
	reg.GaugeFunc("schedserved_pool_queue_depth", "",
		func() int64 { return int64(s.pool.QueueDepth()) })
	reg.GaugeFunc("schedserved_pool_inflight", "",
		func() int64 { return int64(s.pool.Inflight()) })
	reg.GaugeFunc("schedserved_uptime_seconds", "",
		func() int64 { return int64(time.Since(o.start).Seconds()) })

	// The throwaway set lives on a private registry so records against
	// unknown endpoint names never reach the exposition.
	o.throwaway = &epMetrics{
		ok: &obs.Counter{}, clientErr: &obs.Counter{}, rejected: &obs.Counter{},
		serverErr: &obs.Counter{}, latencySum: &obs.Counter{}, latencyMax: &obs.Max{},
		latency: obs.NewRegistry().Histogram("discard_ns", "", nil),
	}
	return o
}

// endpoint returns the named endpoint's handles, or a throwaway set for
// a name that was never registered.
func (o *serverObs) endpoint(name string) *epMetrics {
	if e, ok := o.eps[name]; ok {
		return e
	}
	return o.throwaway
}

// observeSpans records a finished trace's spans into the per-phase
// histograms.
func (o *serverObs) observeSpans(info *obs.TraceInfo) {
	if info == nil {
		return
	}
	for _, sp := range info.Spans {
		if h, ok := o.phase[sp.Phase]; ok {
			h.Observe(sp.Ns)
		}
	}
}
