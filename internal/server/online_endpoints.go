package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"schedfilter/internal/obs"
)

// The online-learning control plane: listing filter versions, manual
// activation and rollback, and on-demand retraining. These handlers run
// on the connection goroutine, NOT the compile pool — retraining a
// target can take a while (drain + Ripper induction + shadow eval), and
// it must never starve the compile workers it is retraining for. The
// manager's own per-target single-flight lock serializes overlapping
// retrains.

// onlineEndpoint wraps one control-plane handler: reject when the loop
// is disabled, read the body, run work inline, encode, record metrics.
func (s *Server) onlineEndpoint(name string, work func(r *http.Request, body []byte) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ep := s.obs.endpoint(name)
		tr := obs.StartTrace(r.Header.Get(obs.TraceHeader))
		if s.online == nil {
			s.reply(w, ep, tr, start, http.StatusBadRequest,
				ErrorResponse{Error: "online learning is disabled (start the server with -online)"})
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			s.reply(w, ep, tr, start, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		resp, err := work(r, body)
		if err != nil {
			s.reply(w, ep, tr, start, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		s.reply(w, ep, tr, start, http.StatusOK, resp)
	}
}

// actionTarget reads the optional {"target": ...} body shared by the
// activate/rollback/retrain endpoints; empty selects the server default.
func (s *Server) actionTarget(body []byte) (string, error) {
	var req FilterActionRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("bad request: %w", err)
		}
	}
	if req.Target == "" {
		return s.def.name, nil
	}
	return req.Target, nil
}

// handleFilters serves GET /v1/filters: every managed target's filter
// versions (with provenance) and reservoir size.
func (s *Server) handleFilters(w http.ResponseWriter, r *http.Request) {
	s.onlineEndpoint("filters", func(*http.Request, []byte) (any, error) {
		return FiltersResponse{Targets: s.online.Status()}, nil
	})(w, r)
}

// handleActivate serves POST /v1/filters/{version}/activate: hot-swap
// the named version in as a target's serving filter (operator override —
// even gate-rejected versions can be activated).
func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	s.onlineEndpoint("activate", func(r *http.Request, body []byte) (any, error) {
		n, err := strconv.Atoi(r.PathValue("version"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad filter version %q (want a positive integer)", r.PathValue("version"))
		}
		target, err := s.actionTarget(body)
		if err != nil {
			return nil, err
		}
		v, err := s.online.Activate(target, n)
		if err != nil {
			return nil, err
		}
		return FilterActionResponse{Target: target, Version: v}, nil
	})(w, r)
}

// handleRollback serves POST /v1/filters/rollback: revert a target to
// its previously activated version.
func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	s.onlineEndpoint("rollback", func(_ *http.Request, body []byte) (any, error) {
		target, err := s.actionTarget(body)
		if err != nil {
			return nil, err
		}
		v, err := s.online.Rollback(target)
		if err != nil {
			return nil, err
		}
		return FilterActionResponse{Target: target, Version: v}, nil
	})(w, r)
}

// handleRetrain serves POST /v1/retrain: run one retraining round now.
// A named target retrains just that target; an empty body (or empty
// target) retrains every managed target in registry order.
func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	s.onlineEndpoint("retrain", func(_ *http.Request, body []byte) (any, error) {
		var req RetrainRequest
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, fmt.Errorf("bad request: %w", err)
			}
		}
		var resp RetrainResponse
		if req.Target != "" {
			rep, err := s.online.Retrain(req.Target)
			if err != nil {
				return nil, err
			}
			resp.Reports = append(resp.Reports, rep)
			return resp, nil
		}
		for _, ts := range s.online.Status() {
			rep, err := s.online.Retrain(ts.Target)
			if err != nil {
				return nil, err
			}
			resp.Reports = append(resp.Reports, rep)
		}
		return resp, nil
	})(w, r)
}
