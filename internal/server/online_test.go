package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"schedfilter"
)

// Distinct sources so live traffic fills the online reservoir with more
// than one program's blocks.
const testSource2 = `
func mix(n int) int {
  var a int = 1;
  var b int = 2;
  for (var i int = 0; i < n; i = i + 1) { a = a * 3 + b; b = b + a / 4 - i; }
  return a + b;
}
func main() int { return mix(48); }
`

const testSource3 = `
func acc(n int) int {
  var s int = 0;
  for (var i int = 0; i < n; i = i + 1) {
    s = s + i * i - (i / 3) + (s / 7);
  }
  return s;
}
func main() int { return acc(40) - acc(10); }
`

func onlineConfig() Config {
	return Config{
		Online: true,
		OnlineOpts: schedfilter.OnlineConfig{
			Targets:    []string{"mpc7410"},
			MinSamples: 1,
		},
	}
}

func get[T any](t *testing.T, url string) (int, T) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

func TestOnlineEndpointsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, e := get[ErrorResponse](t, ts.URL+"/v1/filters"); code != 400 || !strings.Contains(e.Error, "disabled") {
		t.Fatalf("filters on a static server: %d %+v", code, e)
	}
	for _, path := range []string{"/v1/retrain", "/v1/filters/1/activate", "/v1/filters/rollback"} {
		if code, e := post[ErrorResponse](t, ts.URL+path, FilterActionRequest{}); code != 400 || e.Error == "" {
			t.Fatalf("%s on a static server: %d %+v", path, code, e)
		}
	}
}

func TestOnlineLifecycle(t *testing.T) {
	s, ts := newTestServer(t, onlineConfig())

	// Health advertises the loop and the boot version.
	code, h := get[HealthResponse](t, ts.URL+"/healthz")
	if code != 200 || !h.Online || h.FilterVersion != 1 {
		t.Fatalf("health: %d %+v", code, h)
	}

	// Default-filter traffic is served by registry version 1 and feeds
	// the reservoir.
	for _, src := range []string{testSource, testSource2, testSource3} {
		code, resp := post[ScheduleResponse](t, ts.URL+"/v1/schedule",
			ScheduleRequest{ProgramInput: ProgramInput{Source: src}})
		if code != 200 {
			t.Fatalf("schedule: status %d", code)
		}
		if resp.FilterVersion != 1 {
			t.Fatalf("default traffic served by v%d, want boot v1", resp.FilterVersion)
		}
	}
	// Pinned filters bypass the registry and report version 0.
	if _, resp := post[ScheduleResponse](t, ts.URL+"/v1/schedule", ScheduleRequest{
		ProgramInput: ProgramInput{Source: testSource},
		FilterSpec:   FilterSpec{Filter: "LS"},
	}); resp.FilterVersion != 0 {
		t.Fatalf("pinned filter reported registry version %d", resp.FilterVersion)
	}

	// Retrain: the queue drains, a candidate is induced and registered.
	code, rr := post[RetrainResponse](t, ts.URL+"/v1/retrain", RetrainRequest{})
	if code != 200 || len(rr.Reports) != 1 {
		t.Fatalf("retrain: %d %+v", code, rr)
	}
	rep := rr.Reports[0]
	if rep.Target != "mpc7410" || rep.Samples == 0 || rep.Version < 2 {
		t.Fatalf("retrain report: %+v", rep)
	}

	// The registry lists boot + candidate with provenance.
	code, fl := get[FiltersResponse](t, ts.URL+"/v1/filters")
	if code != 200 || len(fl.Targets) != 1 {
		t.Fatalf("filters: %d %+v", code, fl)
	}
	tgt := fl.Targets[0]
	if len(tgt.Versions) != rep.Version {
		t.Fatalf("registry lists %d versions, want %d", len(tgt.Versions), rep.Version)
	}
	cand := tgt.Versions[rep.Version-1]
	if cand.Rules == "" || cand.RuleHash == "" || cand.Samples != rep.Samples || cand.Threshold == 0 {
		t.Fatalf("candidate provenance incomplete: %+v", cand)
	}

	// Operator override: activate the candidate (whatever the gate said),
	// and traffic must flip to it.
	code, act := post[FilterActionResponse](t, ts.URL+fmt.Sprintf("/v1/filters/%d/activate", rep.Version), FilterActionRequest{})
	if code != 200 || act.Version.Version != rep.Version {
		t.Fatalf("activate: %d %+v", code, act)
	}
	if _, resp := post[ScheduleResponse](t, ts.URL+"/v1/schedule",
		ScheduleRequest{ProgramInput: ProgramInput{Source: testSource}}); resp.FilterVersion != rep.Version {
		t.Fatalf("traffic still on v%d after activating v%d", resp.FilterVersion, rep.Version)
	}

	// Rollback restores the previous active version.
	code, rb := post[FilterActionResponse](t, ts.URL+"/v1/filters/rollback", FilterActionRequest{})
	if code != 200 {
		t.Fatalf("rollback: %d %+v", code, rb)
	}
	if _, v := s.Online().ActiveFilter("mpc7410"); v != rb.Version.Version {
		t.Fatalf("rollback reported v%d but v%d serves", rb.Version.Version, v)
	}

	// Online counters reach /metrics.
	if obs := scrape(t, ts.URL, "online_blocks_observed_total"); obs == 0 {
		t.Fatal("observed counter missing from /metrics")
	}
	if rt := scrape(t, ts.URL, "online_retrains_total"); rt != 1 {
		t.Fatalf("retrains counter = %d, want 1", rt)
	}
	if av := scrape(t, ts.URL, `online_active_filter_version{target="mpc7410"}`); av == 0 {
		t.Fatal("active version gauge missing from /metrics")
	}

	// Unknown registry versions and unmanaged targets are client faults.
	if code, _ := post[ErrorResponse](t, ts.URL+"/v1/filters/99/activate", FilterActionRequest{}); code != 400 {
		t.Fatalf("activating v99: status %d", code)
	}
	if code, _ := post[ErrorResponse](t, ts.URL+"/v1/retrain", RetrainRequest{Target: "wide4"}); code != 400 {
		t.Fatalf("retraining an unmanaged target: status %d", code)
	}
}

// The hot-swap acceptance test: requests keep succeeding, with no
// dropped or torn responses, while retraining, activation, and rollback
// continuously swap the serving filter underneath them. Run with -race.
func TestOnlineHotSwapSoak(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    4,
		QueueDepth: 256,
		Online:     true,
		OnlineOpts: schedfilter.OnlineConfig{Targets: []string{"mpc7410"}, MinSamples: 1},
	})
	sources := []string{testSource, testSource2, testSource3}
	// Seed the reservoir so the first retrain has samples.
	for _, src := range sources {
		post[ScheduleResponse](t, ts.URL+"/v1/schedule", ScheduleRequest{ProgramInput: ProgramInput{Source: src}})
	}

	var (
		wg       sync.WaitGroup
		failed   atomic.Int64
		torn     atomic.Int64
		loadDone atomic.Bool
	)
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				code, resp := post[ScheduleResponse](t, ts.URL+"/v1/schedule",
					ScheduleRequest{ProgramInput: ProgramInput{Source: sources[(c+i)%len(sources)]}})
				if code != 200 {
					failed.Add(1)
					continue
				}
				// A torn response would mix filters mid-swap: the version
				// must always be a live registry version and the label
				// must be present.
				if resp.FilterVersion < 1 || resp.Filter == "" || resp.Blocks == 0 {
					torn.Add(1)
				}
			}
		}(c)
	}

	// The swapper: retrain and flip versions as fast as possible until
	// the load finishes.
	swapper := make(chan struct{})
	go func() {
		defer close(swapper)
		flip := 1
		for !loadDone.Load() {
			post[RetrainResponse](t, ts.URL+"/v1/retrain", RetrainRequest{})
			flip++
			code, fl := get[FiltersResponse](t, ts.URL+"/v1/filters")
			if code != 200 || len(fl.Targets) == 0 {
				continue
			}
			n := 1 + flip%len(fl.Targets[0].Versions)
			post[FilterActionResponse](t, ts.URL+fmt.Sprintf("/v1/filters/%d/activate", n), FilterActionRequest{})
		}
	}()

	wg.Wait()
	loadDone.Store(true)
	<-swapper

	if f := failed.Load(); f != 0 {
		t.Fatalf("%d requests failed during hot-swap", f)
	}
	if tn := torn.Load(); tn != 0 {
		t.Fatalf("%d torn responses during hot-swap", tn)
	}
}
