package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Backpressure errors. The HTTP layer maps ErrBusy to 429 Too Many
// Requests and ErrClosed to 503 Service Unavailable.
var (
	// ErrBusy means the admission queue is full: the client should back
	// off and retry.
	ErrBusy = errors.New("server: compile queue full")
	// ErrClosed means the server is draining for shutdown.
	ErrClosed = errors.New("server: shutting down")
)

// pool is the bounded worker pool every compilation request runs on. The
// HTTP handlers are cheap (decode, enqueue, encode); all compiler work
// happens on the pool's fixed worker set, so a traffic burst queues
// instead of spawning unbounded concurrent compilations, and a full
// queue rejects immediately — backpressure the caller can see.
type pool struct {
	jobs     chan job
	wg       sync.WaitGroup
	inflight atomic.Int64

	mu     sync.Mutex
	closed bool
}

type job struct {
	run  func()
	done chan struct{}
}

func newPool(workers, depth int) *pool {
	p := &pool{jobs: make(chan job, depth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.inflight.Add(1)
		j.run()
		p.inflight.Add(-1)
		close(j.done)
	}
}

// Do submits f and waits for it to finish. It fails fast with ErrBusy
// when the queue is full and ErrClosed when the pool is draining. A
// cancelled ctx abandons the wait (the job itself still runs to
// completion; the caller must not read its results after an error).
func (p *pool) Do(ctx context.Context, f func()) error {
	j := job{run: f, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	select {
	case p.jobs <- j:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return ErrBusy
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth returns the number of queued (not yet started) jobs.
func (p *pool) QueueDepth() int { return len(p.jobs) }

// Inflight returns the number of jobs currently executing.
func (p *pool) Inflight() int { return int(p.inflight.Load()) }

// Close drains the pool gracefully: new submissions fail with ErrClosed,
// queued and in-flight jobs run to completion, and Close returns once the
// workers have exited. Idempotent.
func (p *pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
