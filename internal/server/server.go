// Package server is the compile service: scheduling-as-a-service over
// the schedfilter facade. It exposes the compile → filter → schedule →
// execute pipeline as an HTTP/JSON API, runs every compilation on a
// bounded worker pool (full queue → 429, shutdown → 503), shares one
// content-addressed scheduled-block cache across all requests, and
// reports per-endpoint counters and latencies plus cache and pool gauges
// at /metrics (Prometheus text format) and profiles at /debug/pprof.
//
// Endpoints:
//
//	POST /v1/compile   Jolt source (or bundled workload) → machine code
//	POST /v1/schedule  compile + filter-gated scheduling through the cache
//	POST /v1/predict   filter decisions only (features + rules, no scheduling)
//	POST /v1/execute   compile + schedule + cycle-timed simulation
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness + configured filter/model
//	GET  /debug/pprof  Go profiling endpoints
//
// The daemon wrapper is cmd/schedserved; the client and load generator
// are cmd/schedctl.
package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"schedfilter"
	"schedfilter/internal/obs"
)

// maxBody bounds request bodies (source text is small; listings are the
// big direction, and those are responses).
const maxBody = 8 << 20

// Config parameterizes the service.
type Config struct {
	// Node is this instance's name in a cluster: reported on /healthz,
	// stamped on every response as the X-Sched-Node header, and used by
	// the gateway to attribute routing. Empty is fine for a single-node
	// deployment — the header and health field are then omitted.
	Node string
	// Target names the default machine target for requests that don't
	// select one; empty selects the registry default (mpc7410). Every
	// registered target is served either way — this only picks which one
	// an unadorned request gets.
	Target string
	// Filter is the default scheduling filter for requests that don't
	// select one; nil selects LS (always schedule).
	Filter schedfilter.Filter
	// Workers sizes the compile worker pool; 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; 0 selects 4×Workers.
	// Submissions beyond Workers+QueueDepth are rejected with 429.
	QueueDepth int
	// CacheWeight bounds the scheduled-block cache in words; 0 selects
	// a default sized for sustained traffic.
	CacheWeight int
	// JIT configures compilation; the zero value selects the defaults.
	JIT schedfilter.JITOptions
	// Online enables the online-learning loop: live traffic feeds
	// per-target sample reservoirs, a background trainer periodically
	// re-induces the filter, candidates are shadow-gated against the
	// incumbent, and promotions hot-swap the default serving filter.
	Online bool
	// OnlineOpts parameterize the loop when Online is set; the zero
	// value selects defaults. Boot is overwritten with Config.Filter —
	// the server's configured filter is always version 1.
	OnlineOpts schedfilter.OnlineConfig
}

func (c Config) withDefaults() Config {
	if c.Target == "" {
		c.Target = schedfilter.DefaultTargetName
	}
	if c.Filter == nil {
		c.Filter = schedfilter.AlwaysSchedule
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheWeight <= 0 {
		c.CacheWeight = 1 << 20
	}
	if c.JIT == (schedfilter.JITOptions{}) {
		c.JIT = schedfilter.DefaultJITOptions()
	}
	return c
}

// machineTarget is one servable machine: the registered target's
// immutable model, held for the server's whole lifetime, plus its own
// content-addressed scheduled-block cache. Caches are per target so one
// machine's traffic can never evict another's hot blocks.
type machineTarget struct {
	name  string
	model *schedfilter.Machine
	cache *schedfilter.ScheduleCache
}

// Server is one compile-service instance. Create with New, serve its
// Handler, and Close it to drain in-flight compilations on shutdown.
type Server struct {
	cfg     Config
	targets map[string]*machineTarget
	order   []string // target names in registry order, for stable output
	def     *machineTarget
	pool    *pool
	obs     *serverObs
	mux     *http.ServeMux
	// flight coalesces concurrent identical schedule/execute requests
	// (same program fingerprint + filter identity) into one scheduling
	// pass — the stampede that follows a filter activation flushing
	// cluster affinity costs one pass instead of N.
	flight schedfilter.ScheduleFlight
	// schedFlightHook, when non-nil, runs inside a schedule flight leader
	// before its pass. Tests set it (before serving traffic) to hold a
	// leader in flight while a stampede forms; production leaves it nil.
	schedFlightHook func()
	// online is the learning loop (nil when Config.Online is unset).
	online *schedfilter.OnlineManager
	// draining flips when shutdown begins: /healthz answers 503 from
	// then on, so load balancers stop routing here before the listener
	// closes. Requests already in flight (and stragglers that raced the
	// flip) still complete normally.
	draining atomic.Bool
}

// New builds a server. Every registered machine target is servable; the
// worker pool starts immediately. Panics on a Config.Target that names no
// registered target — that is a deployment error, not a request error.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		targets: map[string]*machineTarget{},
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
	}
	for _, tgt := range schedfilter.Targets() {
		s.targets[tgt.Name] = &machineTarget{
			name:  tgt.Name,
			model: tgt.Model,
			cache: schedfilter.NewScheduleCache(cfg.CacheWeight),
		}
		s.order = append(s.order, tgt.Name)
	}
	def, ok := s.targets[cfg.Target]
	if !ok {
		panic(fmt.Sprintf("server: default target %q is not registered", cfg.Target))
	}
	s.def = def
	if cfg.Online {
		oc := cfg.OnlineOpts
		oc.Boot = cfg.Filter
		mgr, err := schedfilter.NewOnlineManager(oc)
		if err != nil {
			// Misconfigured online loop (unknown target, unreadable
			// spill) is a deployment error, like an unknown default
			// target.
			panic(fmt.Sprintf("server: online learning: %v", err))
		}
		s.online = mgr
	}
	// Metrics registration reads the targets, pool, flight, and online
	// loop built above; the registry then serves /metrics directly.
	s.obs = newServerObs(s, "compile", "schedule", "predict", "execute",
		"filters", "activate", "rollback", "retrain")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.endpoint("compile", s.doCompile))
	mux.HandleFunc("POST /v1/schedule", s.endpoint("schedule", s.doSchedule))
	mux.HandleFunc("POST /v1/predict", s.endpoint("predict", s.doPredict))
	mux.HandleFunc("POST /v1/execute", s.endpoint("execute", s.doExecute))
	mux.HandleFunc("GET /v1/filters", s.handleFilters)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("POST /v1/filters/{version}/activate", s.handleActivate)
	mux.HandleFunc("POST /v1/filters/rollback", s.handleRollback)
	mux.HandleFunc("POST /v1/retrain", s.handleRetrain)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the default target's scheduled-block cache (for stats
// and tests); CacheFor exposes any target's.
func (s *Server) Cache() *schedfilter.ScheduleCache { return s.def.cache }

// CacheFor returns the named target's scheduled-block cache, or nil for
// an unknown target.
func (s *Server) CacheFor(target string) *schedfilter.ScheduleCache {
	if mt, ok := s.targets[target]; ok {
		return mt.cache
	}
	return nil
}

// resolveTarget picks the request's machine target: the server default
// for an empty name, otherwise a registered target. Unknown names are a
// client fault.
func (s *Server) resolveTarget(name string) (*machineTarget, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return s.def, nil
	}
	if mt, ok := s.targets[name]; ok {
		return mt, nil
	}
	return nil, fmt.Errorf("unknown target %q (known: %s)", name, strings.Join(s.order, ", "))
}

// Close drains the worker pool: queued and in-flight compilations finish,
// new submissions are rejected with 503. The online loop (when enabled)
// stops afterwards and spills its reservoirs. Call after the HTTP
// listener has stopped accepting (http.Server.Shutdown) for a fully
// graceful stop.
func (s *Server) Close() {
	s.pool.Close()
	if s.online != nil {
		_ = s.online.Close()
	}
}

// Online exposes the learning loop's manager (nil when disabled); tests
// and the daemon use it.
func (s *Server) Online() *schedfilter.OnlineManager { return s.online }

// endpoint wraps one compiler endpoint: adopt (or mint) the request's
// trace, read the body on the connection goroutine, run work on the
// bounded pool (measuring queue wait into the trace), seal the trace
// into the response, encode, record metrics. work returns the response
// value or a client-fault error (400).
func (s *Server) endpoint(name string, work func(ctx context.Context, body []byte) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ep := s.obs.endpoint(name)
		tr := obs.StartTrace(r.Header.Get(obs.TraceHeader))
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			s.reply(w, ep, tr, start, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		ctx := obs.WithTrace(r.Context(), tr)
		var resp any
		var workErr error
		submit := time.Now()
		err = s.pool.Do(ctx, func() {
			tr.Record(obs.PhaseQueueWait, time.Since(submit).Nanoseconds())
			resp, workErr = work(ctx, body)
		})
		switch {
		case errors.Is(err, ErrBusy):
			w.Header().Set("Retry-After", "1")
			s.reply(w, ep, tr, start, http.StatusTooManyRequests, ErrorResponse{Error: err.Error()})
		case errors.Is(err, ErrClosed):
			s.reply(w, ep, tr, start, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
		case err != nil:
			// Client went away mid-job; the write below is best-effort.
			s.reply(w, ep, tr, start, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
		case workErr != nil:
			s.reply(w, ep, tr, start, http.StatusBadRequest, ErrorResponse{Error: workErr.Error()})
		default:
			info := tr.Finish(time.Since(start).Nanoseconds())
			if tc, ok := resp.(traceCarrier); ok {
				tc.setTrace(info)
			}
			s.obs.observeSpans(info)
			s.reply(w, ep, tr, start, http.StatusOK, resp)
		}
	}
}

// reply records the response outcome and writes the JSON body. The
// trace ID is echoed on every response — including errors — so a caller
// can correlate failures too; tr may be nil for untraced handlers.
func (s *Server) reply(w http.ResponseWriter, ep *epMetrics, tr *obs.Trace, start time.Time, status int, v any) {
	ep.record(status, time.Since(start))
	if s.cfg.Node != "" {
		w.Header().Set("X-Sched-Node", s.cfg.Node)
	}
	if id := tr.ID(); id != "" {
		w.Header().Set(obs.TraceHeader, id)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // connection-level failure; nothing left to do
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.obs.reg.Render(w)
}

// BeginDrain flips the health endpoint to 503 ("draining"). Call it
// when shutdown starts, before the listener stops accepting: a load
// balancer or cluster gateway polling /healthz then takes the node out
// of rotation instead of eating connection resets when the socket
// closes. Compile endpoints keep serving until the pool closes.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:   "ok",
		Node:     s.cfg.Node,
		Filter:   s.cfg.Filter.Name(),
		Policy:   s.cfg.Filter.Name(),
		PolicyID: schedfilter.PolicyID(s.cfg.Filter),
		Model:    s.def.model.Name,
		Target:   s.def.name,
		Targets:  append([]string(nil), s.order...),
	}
	if s.online != nil {
		resp.Online = true
		f, version := s.online.ActiveFilter(s.def.name)
		resp.Filter = f.Name()
		resp.Policy = f.Name()
		resp.PolicyID = schedfilter.PolicyID(f)
		resp.FilterVersion = version
		resp.ActiveFilters = s.online.ActiveSummary()
	}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		resp.Draining = true
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// handlePolicies serves GET /v1/policies: the registered policy kinds
// plus every servable target's active policy (name, kind, content
// identity, provenance, online version). Unlike /v1/filters it answers
// with or without online learning — the serving policy always exists.
func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	resp := PoliciesResponse{}
	for _, k := range schedfilter.PolicyKinds() {
		resp.Kinds = append(resp.Kinds, PolicyKindInfo{Name: k.Name, Description: k.Description})
	}
	for _, name := range s.order {
		f, version := s.cfg.Filter, 0
		if s.online != nil {
			f, version = s.online.ActiveFilter(name)
		}
		pv := f.Provenance()
		resp.Active = append(resp.Active, PolicyInfo{
			Target:     name,
			Name:       f.Name(),
			Kind:       pv.Kind,
			ID:         schedfilter.PolicyID(f),
			TrainedFor: pv.Target,
			Detail:     pv.Detail,
			Version:    version,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// compileInput compiles a request's program (inline source or bundled
// workload) to unscheduled machine code.
func (s *Server) compileInput(in ProgramInput) (*schedfilter.Program, time.Duration, error) {
	start := time.Now()
	var mod *schedfilter.Module
	var err error
	switch {
	case in.Source != "" && in.Workload != "":
		return nil, 0, fmt.Errorf("source and workload are mutually exclusive")
	case in.Source != "":
		mod, err = schedfilter.CompileJolt(in.Source)
	case in.Workload != "":
		var w *schedfilter.Workload
		if w, err = schedfilter.WorkloadByName(in.Workload); err == nil {
			mod, err = w.Compile()
		}
	default:
		return nil, 0, fmt.Errorf("request needs source or workload")
	}
	if err != nil {
		return nil, 0, err
	}
	prog, err := schedfilter.CompileModule(mod, s.cfg.JIT)
	if err != nil {
		return nil, 0, err
	}
	return prog, time.Since(start), nil
}

// resolvePolicy picks the request's scheduling policy for a machine
// target: inline model text first, then ProgramInput.Policy, then the
// historical FilterSpec.Filter — the latter two share the policy spec
// mini-language, with "default"/empty meaning the server's configured
// (or online-active) policy. The returned version is non-zero only when
// the policy came from the online registry's active slot — the number
// hot-swaps change and loadgen tallies.
func (s *Server) resolvePolicy(policySpec string, spec FilterSpec, mt *machineTarget) (schedfilter.Policy, int, error) {
	if spec.Model != "" {
		f, err := schedfilter.ParsePolicy(spec.Model, mt.name)
		return f, 0, err
	}
	name := strings.TrimSpace(policySpec)
	if name == "" {
		name = strings.TrimSpace(spec.Filter)
	}
	if name == "" || strings.EqualFold(name, "default") {
		if s.online != nil {
			f, version := s.online.ActiveFilter(mt.name)
			return f, version, nil
		}
		return s.cfg.Filter, 0, nil
	}
	f, err := schedfilter.PolicyFromSpec(name, mt.name)
	if err != nil {
		return nil, 0, err
	}
	return f, 0, nil
}

// resolveFilter is resolvePolicy without a ProgramInput.Policy spec
// (the historical entry point; retrain/activate paths still use it).
func (s *Server) resolveFilter(spec FilterSpec, mt *machineTarget) (schedfilter.Filter, int, error) {
	return s.resolvePolicy("", spec, mt)
}

// observe feeds a freshly compiled (still unscheduled) program to the
// online sample collector. Must run before the scheduling pass reorders
// blocks — the collector needs original-order instruction content.
func (s *Server) observe(mt *machineTarget, prog *schedfilter.Program) {
	if s.online != nil {
		s.online.Observe(mt.name, prog)
	}
}

func (s *Server) doCompile(ctx context.Context, body []byte) (any, error) {
	var req CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request: %w", err)
	}
	// compile needs no machine, but an unknown target is still a bad
	// request — catch it here rather than on the follow-up schedule.
	if _, err := s.resolveTarget(req.Target); err != nil {
		return nil, err
	}
	prog, compileT, err := s.compileInput(req.ProgramInput)
	if err != nil {
		return nil, err
	}
	obs.TraceFrom(ctx).Record(obs.PhaseCompile, compileT.Nanoseconds())
	resp := &CompileResponse{
		Fns:       len(prog.Fns),
		Blocks:    prog.NumBlocks(),
		Instrs:    prog.NumInstrs(),
		CompileNs: compileT.Nanoseconds(),
	}
	if req.Listing {
		resp.Listing = prog.String()
	}
	return resp, nil
}

// schedulePass runs the filter-gated scheduling pass for a request on
// the resolved target's machine and cache, and feeds the pass totals
// into the server metrics. The pass runs with phase timing on, so the
// returned stats carry the per-phase breakdown traces report.
func (s *Server) schedulePass(prog *schedfilter.Program, f schedfilter.Filter, mt *machineTarget, noCache bool) schedfilter.ScheduleStats {
	cache := mt.cache
	if noCache {
		cache = nil
	}
	st := schedfilter.ScheduleWithCacheTimed(mt.model, prog, f, cache)
	runs := st.CacheMisses
	if noCache {
		runs = st.Scheduled
	}
	s.obs.blocksSeen.Add(int64(st.Blocks))
	s.obs.blocksScheduled.Add(int64(st.Scheduled))
	s.obs.schedulerRuns.Add(int64(runs))
	s.obs.cacheHits.Add(int64(st.CacheHits))
	s.obs.schedNs.Add(st.SchedTime.Nanoseconds())
	return st
}

// recordSchedPhases feeds a pass's phase breakdown into the request's
// trace. Callers skip it for coalesced responses: a follower's wall
// time overlaps only part of the leader's pass, and recording the
// leader's phases could break the sum(spans) ≤ total invariant.
func recordSchedPhases(tr *obs.Trace, st schedfilter.ScheduleStats) {
	tr.Record(obs.PhaseCacheLookup, st.Phases.CacheLookupNs)
	tr.Record(obs.PhaseDAGBuild, st.Phases.DAGBuildNs)
	tr.Record(obs.PhaseListSchedule, st.Phases.ListSchedNs)
	tr.Record(obs.PhaseEstimator, st.Phases.EstimatorNs)
}

func (s *Server) doSchedule(ctx context.Context, body []byte) (any, error) {
	var req ScheduleRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request: %w", err)
	}
	mt, err := s.resolveTarget(req.Target)
	if err != nil {
		return nil, err
	}
	f, version, err := s.resolvePolicy(req.Policy, req.FilterSpec, mt)
	if err != nil {
		return nil, err
	}
	prog, compileT, err := s.compileInput(req.ProgramInput)
	if err != nil {
		return nil, err
	}
	tr := obs.TraceFrom(ctx)
	tr.Record(obs.PhaseCompile, compileT.Nanoseconds())
	s.observe(mt, prog)
	// The fingerprint context is the filter's content identity, not its
	// display name: two hot-swapped filter versions that share a label
	// must never alias. Computed on the unscheduled program, it doubles
	// as the singleflight key: scheduling is deterministic in (model,
	// filter, input code), so concurrent identical requests can share one
	// pass. NoCache requests promise an uncached pass and stay out.
	key := schedfilter.FingerprintProgram(mt.model, schedfilter.FilterID(f), prog)
	var st schedfilter.ScheduleStats
	coalesced := false
	if req.NoCache {
		st = s.schedulePass(prog, f, mt, true)
	} else {
		v, shared := s.flight.Do(key, func() any {
			if s.schedFlightHook != nil {
				s.schedFlightHook()
			}
			return s.schedulePass(prog, f, mt, false)
		})
		st = v.(schedfilter.ScheduleStats)
		coalesced = shared
	}
	if !coalesced {
		recordSchedPhases(tr, st)
	}
	return &ScheduleResponse{
		Filter:        f.Name(),
		Policy:        f.Name(),
		PolicyID:      schedfilter.PolicyID(f),
		FilterVersion: version,
		Target:        mt.name,
		Blocks:        st.Blocks,
		Scheduled:     st.Scheduled,
		NotScheduled:  st.NotScheduled,
		Changed:       st.Changed,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
		CostBefore:    st.CostBefore,
		CostAfter:     st.CostAfter,
		CompileNs:     compileT.Nanoseconds(),
		SchedNs:       st.SchedTime.Nanoseconds(),
		ProgramKey:    hex.EncodeToString(key[:]),
		Coalesced:     coalesced,
	}, nil
}

func (s *Server) doPredict(ctx context.Context, body []byte) (any, error) {
	var req PredictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request: %w", err)
	}
	// Prediction reads only target-independent features, but the target
	// still selects which online filter version serves "default" (and an
	// unknown name is still a client fault).
	mt, err := s.resolveTarget(req.Target)
	if err != nil {
		return nil, err
	}
	f, version, err := s.resolvePolicy(req.Policy, req.FilterSpec, mt)
	if err != nil {
		return nil, err
	}
	prog, compileT, err := s.compileInput(req.ProgramInput)
	if err != nil {
		return nil, err
	}
	obs.TraceFrom(ctx).Record(obs.PhaseCompile, compileT.Nanoseconds())
	resp := &PredictResponse{
		Filter:        f.Name(),
		Policy:        f.Name(),
		PolicyID:      schedfilter.PolicyID(f),
		FilterVersion: version,
	}
	for _, fn := range prog.Fns {
		for _, b := range fn.Blocks {
			v := schedfilter.ExtractFeatures(b)
			yes, conf := f.Decide(v)
			resp.Blocks++
			if yes {
				resp.WouldSchedule++
			}
			if req.Detail {
				resp.Decisions = append(resp.Decisions, BlockDecision{
					Fn:         fn.Name,
					Block:      b.ID,
					BBLen:      b.Len(),
					Schedule:   yes,
					Confidence: conf,
				})
			}
		}
	}
	return resp, nil
}

func (s *Server) doExecute(ctx context.Context, body []byte) (any, error) {
	var req ExecuteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request: %w", err)
	}
	mt, err := s.resolveTarget(req.Target)
	if err != nil {
		return nil, err
	}
	f, version, err := s.resolvePolicy(req.Policy, req.FilterSpec, mt)
	if err != nil {
		return nil, err
	}
	prog, compileT, err := s.compileInput(req.ProgramInput)
	if err != nil {
		return nil, err
	}
	tr := obs.TraceFrom(ctx)
	tr.Record(obs.PhaseCompile, compileT.Nanoseconds())
	s.observe(mt, prog)
	// Execute must schedule its own program copy before simulating, but
	// concurrent identical requests still coalesce the scheduler work:
	// followers wait for the leader's pass to warm the scheduled-block
	// cache, then their own pass replays from it (all hits).
	key := schedfilter.FingerprintProgram(mt.model, schedfilter.FilterID(f), prog)
	v, coalesced := s.flight.Do(key, func() any {
		return s.schedulePass(prog, f, mt, false)
	})
	st := v.(schedfilter.ScheduleStats)
	if coalesced {
		st = s.schedulePass(prog, f, mt, false)
	}
	// Either way the pass whose phases we report ran inside this
	// request's wall time (followers re-ran their own replay pass).
	recordSchedPhases(tr, st)
	simStart := time.Now()
	res, err := schedfilter.Execute(prog, mt.model, !req.Untimed)
	if err != nil {
		return nil, err
	}
	tr.Record(obs.PhaseSim, time.Since(simStart).Nanoseconds())
	return &ExecuteResponse{
		Filter:        f.Name(),
		Policy:        f.Name(),
		PolicyID:      schedfilter.PolicyID(f),
		FilterVersion: version,
		Target:        mt.name,
		Ret:           res.Ret,
		Cycles:        res.Cycles,
		DynInstrs:     res.DynInstrs,
		Output:        res.Output,
		Scheduled:     st.Scheduled,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
		CompileNs:     compileT.Nanoseconds(),
		SchedNs:       st.SchedTime.Nanoseconds(),
		SimNs:         time.Since(simStart).Nanoseconds(),
	}, nil
}

// drainNotice is how long the health endpoint advertises "draining"
// (503) before the listener actually stops accepting. It must exceed a
// routing layer's health-check interval so every prober observes the
// flip and takes the node out of rotation first; the gateway's default
// check interval is a fraction of this.
const drainNotice = 750 * time.Millisecond

// ListenAndServe runs the service on addr until ctx is cancelled, then
// shuts down gracefully in LB-friendly order: first /healthz flips to
// 503 and keeps answering for drainNotice so routers stop sending
// traffic, then the listener stops, in-flight requests drain (bounded
// by drainTimeout), and the worker pool closes. It is the daemon main's
// whole lifecycle in one call.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drainTimeout time.Duration) error {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.BeginDrain()
	select {
	case err := <-errc: // listener died while we advertised the drain
		s.Close()
		return err
	case <-time.After(drainNotice):
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	s.Close()
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
