package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

const testSource = `
func work(n int) int {
  var s int = 0;
  for (var i int = 0; i < n; i = i + 1) { s = s + i * 3 - (i / 2); }
  return s;
}
func main() int {
  return work(64) + work(32);
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post[T any](t *testing.T, url string, body any) (int, T) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

// scrape fetches /metrics and returns the value of one (possibly
// labelled) series.
func scrape(t *testing.T, base, metric string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(metric) + ` (-?\d+)$`)
	m := re.FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("metric %q not found in:\n%s", metric, buf.String())
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, resp := post[CompileResponse](t, ts.URL+"/v1/compile", CompileRequest{
		ProgramInput: ProgramInput{Source: testSource},
		Listing:      true,
	})
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Fns == 0 || resp.Blocks == 0 || resp.Instrs == 0 {
		t.Fatalf("empty compile response: %+v", resp)
	}
	if !strings.Contains(resp.Listing, "fn main") {
		t.Fatalf("listing missing main:\n%s", resp.Listing)
	}
}

// The acceptance property: a second identical schedule request is served
// entirely from the cache — the list scheduler does not run again, and
// the /metrics counters prove it.
func TestScheduleSecondRequestFullyCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := ScheduleRequest{ProgramInput: ProgramInput{Source: testSource}}

	code, first := post[ScheduleResponse](t, ts.URL+"/v1/schedule", req)
	if code != 200 {
		t.Fatalf("first schedule: status %d", code)
	}
	if first.Scheduled == 0 || first.CacheMisses == 0 {
		t.Fatalf("cold request did no work: %+v", first)
	}
	runsAfterFirst := scrape(t, ts.URL, "schedserved_scheduler_runs_total")

	code, second := post[ScheduleResponse](t, ts.URL+"/v1/schedule", req)
	if code != 200 {
		t.Fatalf("second schedule: status %d", code)
	}
	if second.CacheMisses != 0 {
		t.Fatalf("second identical request re-ran the scheduler %d times: %+v", second.CacheMisses, second)
	}
	if second.CacheHits != second.Scheduled {
		t.Fatalf("second request not fully cached: %+v", second)
	}
	if second.ProgramKey != first.ProgramKey {
		t.Fatal("identical requests produced different program fingerprints")
	}
	if second.CostAfter != first.CostAfter || second.Changed != first.Changed {
		t.Fatalf("replayed schedule drifted: first %+v second %+v", first, second)
	}
	if runs := scrape(t, ts.URL, "schedserved_scheduler_runs_total"); runs != runsAfterFirst {
		t.Fatalf("scheduler_runs_total advanced %d -> %d on a cached request", runsAfterFirst, runs)
	}
	if hits := scrape(t, ts.URL, "schedserved_sched_cache_hits_total"); hits < int64(second.CacheHits) {
		t.Fatalf("cache hit counter %d below request hits %d", hits, second.CacheHits)
	}
}

func TestScheduleNoCacheBypasses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := ScheduleRequest{ProgramInput: ProgramInput{Source: testSource}, NoCache: true}
	post[ScheduleResponse](t, ts.URL+"/v1/schedule", req)
	code, second := post[ScheduleResponse](t, ts.URL+"/v1/schedule", req)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if second.CacheHits != 0 || second.CacheMisses != 0 {
		t.Fatalf("no_cache request touched the cache: %+v", second)
	}
}

func TestScheduleWorkloadAndFilters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, filter := range []string{"LS", "NS", "size:10"} {
		code, resp := post[ScheduleResponse](t, ts.URL+"/v1/schedule", ScheduleRequest{
			ProgramInput: ProgramInput{Workload: "compress"},
			FilterSpec:   FilterSpec{Filter: filter},
		})
		if code != 200 {
			t.Fatalf("filter %s: status %d", filter, code)
		}
		if filter == "NS" && resp.Scheduled != 0 {
			t.Fatalf("NS scheduled %d blocks", resp.Scheduled)
		}
		if filter == "LS" && resp.Scheduled != resp.Blocks {
			t.Fatalf("LS skipped blocks: %+v", resp)
		}
	}
}

func TestPredictEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, resp := post[PredictResponse](t, ts.URL+"/v1/predict", PredictRequest{
		ProgramInput: ProgramInput{Source: testSource},
		FilterSpec:   FilterSpec{Filter: "size:5"},
		Detail:       true,
	})
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Blocks == 0 || len(resp.Decisions) != resp.Blocks {
		t.Fatalf("bad predict response: %+v", resp)
	}
	yes := 0
	for _, d := range resp.Decisions {
		if d.Schedule {
			yes++
			if d.BBLen < 5 {
				t.Fatalf("size:5 approved a %d-instruction block", d.BBLen)
			}
		}
	}
	if yes != resp.WouldSchedule {
		t.Fatalf("decision list disagrees with aggregate: %d vs %d", yes, resp.WouldSchedule)
	}
}

func TestExecuteEndpointDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := ExecuteRequest{ProgramInput: ProgramInput{Source: testSource}}
	code, first := post[ExecuteResponse](t, ts.URL+"/v1/execute", req)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if first.Cycles == 0 || first.DynInstrs == 0 {
		t.Fatalf("untimed or empty run: %+v", first)
	}
	_, second := post[ExecuteResponse](t, ts.URL+"/v1/execute", req)
	if second.Ret != first.Ret || second.Cycles != first.Cycles {
		t.Fatalf("execute not deterministic: %+v vs %+v", first, second)
	}
	if second.CacheMisses != 0 {
		t.Fatalf("second execute re-ran the scheduler: %+v", second)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  ScheduleRequest
	}{
		{"empty", ScheduleRequest{}},
		{"both inputs", ScheduleRequest{ProgramInput: ProgramInput{Source: "x", Workload: "compress"}}},
		{"bad source", ScheduleRequest{ProgramInput: ProgramInput{Source: "func ("}}},
		{"unknown workload", ScheduleRequest{ProgramInput: ProgramInput{Workload: "nope"}}},
		{"unknown filter", ScheduleRequest{ProgramInput: ProgramInput{Source: testSource}, FilterSpec: FilterSpec{Filter: "wat"}}},
		{"bad size", ScheduleRequest{ProgramInput: ProgramInput{Source: testSource}, FilterSpec: FilterSpec{Filter: "size:x"}}},
	}
	for _, c := range cases {
		code, resp := post[ErrorResponse](t, ts.URL+"/v1/schedule", c.req)
		if code != 400 {
			t.Errorf("%s: status %d, want 400", c.name, code)
		}
		if resp.Error == "" {
			t.Errorf("%s: empty error body", c.name)
		}
	}
}

func TestInlineModelFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	model := "# filter: L/N inline\n# labels: list orig\n(    1/   0) list :- bbLen >= 6.\n(    1/   0) orig :- .\n"
	code, resp := post[PredictResponse](t, ts.URL+"/v1/predict", PredictRequest{
		ProgramInput: ProgramInput{Source: testSource},
		FilterSpec:   FilterSpec{Model: model},
	})
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Filter != "L/N inline" {
		t.Fatalf("filter label = %q", resp.Filter)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Model == "" || h.Filter == "" {
		t.Fatalf("bad health: %+v", h)
	}
	if h.Target != "mpc7410" || len(h.Targets) < 3 {
		t.Fatalf("health should name the default target and list all: %+v", h)
	}
}

// The LB contract behind satellite drain support: BeginDrain flips
// /healthz to 503 "draining" while the compile endpoints keep serving,
// so a balancer or cluster gateway pulls the node before its listener
// closes and in-flight clients never see a reset.
func TestBeginDrainFlipsHealthzKeepsServing(t *testing.T) {
	s, ts := newTestServer(t, Config{Node: "n-drain"})
	if s.Draining() {
		t.Fatal("fresh server reports draining")
	}
	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: HTTP %d, want 503", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Draining || h.Node != "n-drain" {
		t.Fatalf("draining health: %+v", h)
	}
	// Work endpoints still answer: drain only moves the health signal.
	code, sr := post[ScheduleResponse](t, ts.URL+"/v1/schedule", ScheduleRequest{
		ProgramInput: ProgramInput{Source: testSource},
	})
	if code != 200 || sr.Blocks == 0 {
		t.Fatalf("schedule during drain: status %d, %+v", code, sr)
	}
	if v := scrape(t, ts.URL, "schedserved_draining"); v != 1 {
		t.Fatalf("schedserved_draining = %d during drain, want 1", v)
	}
}

// The drained shutdown end to end: health flips before the listener
// closes, in the ListenAndServe path the daemons use.
func TestListenAndServeDrainOrder(t *testing.T) {
	s := New(Config{Node: "n-lb"})
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, addr, 5*time.Second) }()
	base := "http://" + addr
	// Wait for the listener.
	var resp *http.Response
	for i := 0; i < 200; i++ {
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up on %s: %v", addr, err)
	}
	resp.Body.Close()
	cancel()
	// Within the drain notice the listener still answers, 503.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz during drain notice: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain notice: HTTP %d, want 503", resp.StatusCode)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("ListenAndServe: %v", err)
	}
}

func TestScheduleSelectsTarget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	def := ScheduleRequest{ProgramInput: ProgramInput{Source: testSource}}
	wide := ScheduleRequest{ProgramInput: ProgramInput{Source: testSource, Target: "wide4"}}

	code, d := post[ScheduleResponse](t, ts.URL+"/v1/schedule", def)
	if code != 200 || d.Target != "mpc7410" {
		t.Fatalf("default schedule: status %d, target %q", code, d.Target)
	}
	code, w := post[ScheduleResponse](t, ts.URL+"/v1/schedule", wide)
	if code != 200 || w.Target != "wide4" {
		t.Fatalf("wide4 schedule: status %d, target %q", code, w.Target)
	}
	if w.ProgramKey == d.ProgramKey {
		t.Fatal("different targets produced the same program fingerprint")
	}
	// The machine models genuinely differ: the 4-wide issue estimates the
	// same code as at least as cheap as the dual-issue default.
	if w.CostAfter > d.CostAfter {
		t.Fatalf("wide4 cost %d > mpc7410 cost %d", w.CostAfter, d.CostAfter)
	}
}

func TestTargetsHaveIsolatedCaches(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := func(target string) ScheduleRequest {
		return ScheduleRequest{ProgramInput: ProgramInput{Source: testSource, Target: target}}
	}
	// Warm the default target's cache.
	post[ScheduleResponse](t, ts.URL+"/v1/schedule", req(""))
	// The first wide4 request must still be a cold miss: its cache is its
	// own, not the default target's.
	code, w := post[ScheduleResponse](t, ts.URL+"/v1/schedule", req("wide4"))
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if w.CacheMisses == 0 {
		t.Fatalf("wide4 request hit another target's cache: %+v", w)
	}
	if s.CacheFor("wide4") == nil || s.CacheFor("mpc7410") == nil {
		t.Fatal("CacheFor lost a registered target")
	}
	if s.CacheFor("wide4") == s.CacheFor("mpc7410") {
		t.Fatal("targets share one cache instance")
	}
	if s.CacheFor("nope") != nil {
		t.Fatal("CacheFor(nope) returned a cache")
	}
	// Per-target metrics expose both caches' traffic.
	if v := scrape(t, ts.URL, `codecache_target_misses_total{target="wide4"}`); v == 0 {
		t.Fatal("wide4 cache misses not visible in /metrics")
	}
}

func TestUnknownTargetRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"compile", "schedule", "predict", "execute"} {
		code, resp := post[ErrorResponse](t, ts.URL+"/v1/"+path, ScheduleRequest{
			ProgramInput: ProgramInput{Source: testSource, Target: "z80"},
		})
		if code != 400 {
			t.Errorf("%s: status %d for unknown target, want 400", path, code)
		}
		if !strings.Contains(resp.Error, "z80") || !strings.Contains(resp.Error, "mpc7410") {
			t.Errorf("%s: error should name the bad and known targets: %q", path, resp.Error)
		}
	}
}

func TestExecuteTargetChangesCycles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	run := func(target string) ExecuteResponse {
		code, r := post[ExecuteResponse](t, ts.URL+"/v1/execute", ExecuteRequest{
			ProgramInput: ProgramInput{Source: testSource, Target: target},
			FilterSpec:   FilterSpec{Filter: "LS"},
		})
		if code != 200 {
			t.Fatalf("execute on %q: status %d", target, code)
		}
		return r
	}
	def := run("")
	narrow := run("scalar1")
	if def.Ret != narrow.Ret {
		t.Fatalf("functional result depends on target: %d vs %d", def.Ret, narrow.Ret)
	}
	if narrow.Cycles < def.Cycles {
		t.Fatalf("single-issue scalar1 ran faster (%d) than dual-issue default (%d)", narrow.Cycles, def.Cycles)
	}
	if def.Target != "mpc7410" || narrow.Target != "scalar1" {
		t.Fatalf("responses mislabel targets: %q, %q", def.Target, narrow.Target)
	}
}

func TestMethodRouting(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on compile endpoint: status %d, want 405", resp.StatusCode)
	}
}

// Backpressure: with the single worker blocked and the queue full, a new
// request must be rejected immediately with 429, and the rejection must
// show up in the endpoint counters.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	// If an assertion below fails, the blocked jobs must still be released
	// or the server's own cleanup deadlocks in pool.Close. Cleanups run
	// LIFO, so this fires before newTestServer's Server.Close.
	t.Cleanup(openGate)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // one running, one queued
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Do is fail-fast: until the worker dequeues the first job, the
			// queue is full and a second submission bounces with ErrBusy.
			for s.pool.Do(context.Background(), func() { <-gate }) == ErrBusy {
				time.Sleep(time.Millisecond)
			}
		}()
	}
	waitFor(t, func() bool { return s.pool.Inflight() == 1 && s.pool.QueueDepth() == 1 })

	code, resp := post[ErrorResponse](t, ts.URL+"/v1/schedule", ScheduleRequest{
		ProgramInput: ProgramInput{Source: testSource},
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if resp.Error == "" {
		t.Fatal("429 without an error body")
	}
	openGate()
	wg.Wait()
	if rejected := scrape(t, ts.URL, `schedserved_requests_total{endpoint="schedule",outcome="rejected"}`); rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", rejected)
	}
}

// Graceful shutdown: Close must let queued and in-flight work finish, and
// later submissions must fail with ErrClosed (503 at the HTTP layer).
func TestCloseDrainsInflight(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	var done [3]bool
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < len(done); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = s.pool.Do(context.Background(), func() {
				<-gate
				done[i] = true
			})
		}(i)
	}
	waitFor(t, func() bool { return s.pool.Inflight()+s.pool.QueueDepth() == len(done) })
	close(gate)
	s.Close()
	wg.Wait()
	for i, d := range done {
		if !d {
			t.Fatalf("job %d dropped during drain", i)
		}
	}
	if err := s.pool.Do(context.Background(), func() {}); err != ErrClosed {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}
}

// Concurrent mixed traffic under -race: many clients, several endpoints,
// one shared cache.
func TestConcurrentTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				var code int
				switch (c + i) % 3 {
				case 0:
					code, _ = post[ScheduleResponse](t, ts.URL+"/v1/schedule",
						ScheduleRequest{ProgramInput: ProgramInput{Source: testSource}})
				case 1:
					code, _ = post[PredictResponse](t, ts.URL+"/v1/predict",
						PredictRequest{ProgramInput: ProgramInput{Source: testSource}})
				default:
					code, _ = post[CompileResponse](t, ts.URL+"/v1/compile",
						CompileRequest{ProgramInput: ProgramInput{Source: testSource}})
				}
				if code != 200 {
					errs <- fmt.Errorf("client %d req %d: status %d", c, i, code)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The shared cache converged: schedule requests after the first are
	// pure replays.
	if hits := scrape(t, ts.URL, "codecache_hits_total"); hits == 0 {
		t.Fatal("no cache hits under repeated concurrent traffic")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScheduleConcurrentDuplicatesCoalesce drives a stampede of identical
// schedule requests straight at the handler (bypassing the HTTP pool so
// concurrency is real) and verifies the singleflight layer: exactly one
// request runs the pass while every other shares it, every response is
// identical where determinism demands it, and the coalescing shows up on
// /metrics. The flight hook holds the leader inside its pass until all
// followers have registered, so the coalescing count is deterministic
// rather than a race against a fast scheduling pass. Run under -race this
// also proves the flight's result sharing is properly synchronized.
func TestScheduleConcurrentDuplicatesCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const par = 16
	s.schedFlightHook = func() {
		deadline := time.Now().Add(10 * time.Second)
		for s.flight.Stats().Coalesced < par-1 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
	}
	body, err := json.Marshal(ScheduleRequest{ProgramInput: ProgramInput{Workload: "compress"}})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]ScheduleResponse, par)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.doSchedule(context.Background(), body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results[i] = *v.(*ScheduleResponse)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("request errors above")
	}
	base := results[0]
	coalesced := 0
	for i, r := range results {
		if r.CacheHits+r.CacheMisses != r.Scheduled {
			t.Fatalf("request %d: hits %d + misses %d != scheduled %d",
				i, r.CacheHits, r.CacheMisses, r.Scheduled)
		}
		if r.ProgramKey != base.ProgramKey || r.Blocks != base.Blocks ||
			r.Scheduled != base.Scheduled || r.NotScheduled != base.NotScheduled ||
			r.CostBefore != base.CostBefore || r.CostAfter != base.CostAfter ||
			r.Changed != base.Changed {
			t.Fatalf("concurrent identical requests diverged:\n%+v\nvs\n%+v", r, base)
		}
		if r.Coalesced {
			coalesced++
		}
	}
	if coalesced != par-1 {
		t.Fatalf("%d of %d responses coalesced, want %d", coalesced, par, par-1)
	}
	st := s.flight.Stats()
	if st.Leaders != 1 || st.Coalesced != par-1 {
		t.Fatalf("flight stats = %+v, want Leaders=1 Coalesced=%d", st, par-1)
	}
	if got := scrape(t, ts.URL, "codecache_coalesced_total"); got != st.Coalesced {
		t.Fatalf("codecache_coalesced_total = %d, flight reports %d", got, st.Coalesced)
	}
	if got := scrape(t, ts.URL, "codecache_flight_leaders_total"); got != st.Leaders {
		t.Fatalf("codecache_flight_leaders_total = %d, flight reports %d", got, st.Leaders)
	}
}

// TestExecuteConcurrentDuplicates checks the execute path under the same
// stampede: followers wait out the leader's pass, replay their own
// program from the warmed cache, and simulate to identical results.
func TestExecuteConcurrentDuplicates(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	body, err := json.Marshal(ExecuteRequest{ProgramInput: ProgramInput{Source: testSource}})
	if err != nil {
		t.Fatal(err)
	}
	const par = 8
	results := make([]ExecuteResponse, par)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.doExecute(context.Background(), body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results[i] = *v.(*ExecuteResponse)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("request errors above")
	}
	base := results[0]
	for i, r := range results {
		if r.Ret != base.Ret || r.Cycles != base.Cycles || r.DynInstrs != base.DynInstrs ||
			r.Scheduled != base.Scheduled {
			t.Fatalf("request %d: concurrent identical executes diverged:\n%+v\nvs\n%+v", i, r, base)
		}
		if r.CacheHits+r.CacheMisses != r.Scheduled {
			t.Fatalf("request %d: hits %d + misses %d != scheduled %d",
				i, r.CacheHits, r.CacheMisses, r.Scheduled)
		}
	}
}
