package serverbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"schedfilter"
	"schedfilter/internal/cluster"
	"schedfilter/internal/experiments"
	"schedfilter/internal/server"
	"schedfilter/internal/workloads"
)

// The cluster benchmark boots N schedserved backends plus a schedgate
// gateway in-process and measures what the cluster layer adds:
//
//  1. filter replication — identical sample streams are seeded to every
//     node, a retrain broadcast fans out through the gateway, and the
//     /v1/cluster report must show every node converged on the same
//     filter version (this phase runs first, before routed traffic can
//     skew any reservoir, so its outcome is deterministic);
//  2. routing — every workload's observed serving node must equal the
//     ring's predicted primary, request after request;
//  3. throughput — the same round-robin request stream through a
//     1-backend gateway vs the N-backend gateway;
//  4. batch — one /v1/batch call fanning every workload across shards.
//
// Structural fields of the artifact (routing table, per-node request
// counts, convergence verdict) are deterministic; wall-clock numbers
// are not and are reported for information only.

// ClusterConfig parameterizes the cluster benchmark.
type ClusterConfig struct {
	// Nodes is the backend count; 0 selects 3.
	Nodes int
	// Requests per throughput phase; 0 selects 48.
	Requests int
	// Concurrency of the throughput phases; 0 selects 8.
	Concurrency int
	// Workloads to drive; empty selects all bundled benchmarks.
	Workloads []string
	// Jobs bounds the gateway's batch/broadcast fan-out; 0 selects
	// GOMAXPROCS.
	Jobs int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Requests <= 0 {
		c.Requests = 48
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if len(c.Workloads) == 0 {
		for _, w := range workloads.All() {
			c.Workloads = append(c.Workloads, w.Name)
		}
	}
	return c
}

// ClusterPhase is one throughput phase's numbers.
type ClusterPhase struct {
	Nodes    int `json:"nodes"`
	Requests int `json:"requests"`
	// NodeRequests maps node → served requests (from X-Sched-Node);
	// deterministic given the routing table and round-robin stream.
	NodeRequests map[string]int `json:"node_requests"`
	// Wall-clock numbers; informational, not deterministic.
	WallNs    int64   `json:"wall_ns"`
	ReqPerSec float64 `json:"req_per_sec"`
	AvgNs     int64   `json:"avg_ns"`
}

// ClusterResult is the whole benchmark (the BENCH_cluster.json
// artifact).
type ClusterResult struct {
	Nodes       int      `json:"nodes"`
	Workloads   []string `json:"workloads"`
	Requests    int      `json:"requests_per_phase"`
	Concurrency int      `json:"concurrency"`

	// Convergence phase: broadcast retrain through the gateway after
	// identical seeding on every node, then broadcast activation of the
	// induced candidate (operator override — the version rolls out even
	// where the shadow gate rejected it).
	RetrainOK        int  `json:"retrain_ok"`
	RetrainPromoted  int  `json:"retrain_promoted"`
	ActivatedVersion int  `json:"activated_version"`
	Converged        bool `json:"converged"`
	HashConverged    bool `json:"hash_converged"`
	// Versions maps node → active filter version for the default target
	// after the broadcast.
	Versions map[string]int `json:"versions"`

	// Routing phase: workload → primary node, and whether every observed
	// answer matched the ring's prediction.
	Routing              map[string]string `json:"routing"`
	RoutingDeterministic bool              `json:"routing_deterministic"`

	Single ClusterPhase `json:"single"`
	Multi  ClusterPhase `json:"multi"`
	// Speedup is multi req/s over single req/s; informational (the
	// backends share one process and its CPUs here).
	Speedup float64 `json:"speedup"`

	// Batch phase: one /v1/batch call with one item per workload.
	BatchOK    int            `json:"batch_ok"`
	BatchNodes map[string]int `json:"batch_nodes"`
}

// clusterHarness is the in-process cluster: N backends, their listeners,
// and a gateway over all of them.
type clusterHarness struct {
	backends []*server.Server
	listens  []*httptest.Server
	names    []string
	gw       *cluster.Gateway
	gwListen *httptest.Server
}

func newClusterHarness(nodes int, jobs int) (*clusterHarness, error) {
	h := &clusterHarness{}
	members := make([]cluster.Member, nodes)
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("n%d", i+1)
		s := server.New(server.Config{
			Node:   name,
			Online: true,
			OnlineOpts: schedfilter.OnlineConfig{
				Targets: []string{schedfilter.DefaultTargetName},
			},
		})
		ts := httptest.NewServer(s.Handler())
		h.backends = append(h.backends, s)
		h.listens = append(h.listens, ts)
		h.names = append(h.names, name)
		members[i] = cluster.Member{Name: name, URL: ts.URL}
	}
	gw, err := cluster.New(cluster.Config{
		Members:       members,
		CheckInterval: 25 * time.Millisecond,
		Jobs:          jobs,
		// Hedging duplicates slow requests onto a second node; with every
		// backend sharing this process's CPUs that only skews the
		// deterministic node counts, so the benchmark disables it.
		HedgeAfter: -1,
	})
	if err != nil {
		h.close()
		return nil, err
	}
	h.gw = gw
	h.gwListen = httptest.NewServer(gw.Handler())
	return h, nil
}

func (h *clusterHarness) close() {
	if h.gwListen != nil {
		h.gwListen.Close()
	}
	if h.gw != nil {
		h.gw.Close()
	}
	for i := range h.backends {
		h.listens[i].Close()
		h.backends[i].Close()
	}
}

// RunCluster executes the cluster benchmark.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	cfg = cfg.withDefaults()
	res := &ClusterResult{
		Nodes:       cfg.Nodes,
		Workloads:   cfg.Workloads,
		Requests:    cfg.Requests,
		Concurrency: cfg.Concurrency,
		Routing:     map[string]string{},
		Versions:    map[string]int{},
	}

	h, err := newClusterHarness(cfg.Nodes, cfg.Jobs)
	if err != nil {
		return nil, err
	}
	defer h.close()

	if err := runConvergence(h, cfg, res); err != nil {
		return nil, fmt.Errorf("convergence: %w", err)
	}
	if err := runRouting(h, cfg, res); err != nil {
		return nil, fmt.Errorf("routing: %w", err)
	}

	// Single-node throughput: same backends, but a gateway fronting only
	// the first — every request lands on n1.
	single, err := cluster.New(cluster.Config{
		Members:       []cluster.Member{{Name: h.names[0], URL: h.listens[0].URL}},
		CheckInterval: 25 * time.Millisecond,
		Jobs:          cfg.Jobs,
		HedgeAfter:    -1,
	})
	if err != nil {
		return nil, err
	}
	singleListen := httptest.NewServer(single.Handler())
	res.Single, err = runPhase(singleListen.URL, 1, cfg)
	singleListen.Close()
	single.Close()
	if err != nil {
		return nil, fmt.Errorf("single phase: %w", err)
	}

	res.Multi, err = runPhase(h.gwListen.URL, cfg.Nodes, cfg)
	if err != nil {
		return nil, fmt.Errorf("multi phase: %w", err)
	}
	if res.Single.ReqPerSec > 0 {
		res.Speedup = res.Multi.ReqPerSec / res.Single.ReqPerSec
	}

	if err := runBatch(h, cfg, res); err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	return res, nil
}

// runConvergence seeds every backend with the identical sample stream
// (one schedule request per workload, posted directly so routing cannot
// skew any node's reservoir), broadcasts one retrain through the
// gateway, and reads the convergence verdict off /v1/cluster.
func runConvergence(h *clusterHarness, cfg ClusterConfig, res *ClusterResult) error {
	for i := range h.backends {
		c := &benchClient{base: h.listens[i].URL, hc: h.listens[i].Client()}
		for _, w := range cfg.Workloads {
			if _, err := c.schedule(server.ScheduleRequest{
				ProgramInput: server.ProgramInput{Workload: w},
				FilterSpec:   server.FilterSpec{Filter: "default"},
			}); err != nil {
				return fmt.Errorf("seed %s on %s: %w", w, h.names[i], err)
			}
		}
		// Sample measurement is asynchronous; retraining before the
		// queue drains would see no labelled samples.
		if err := waitMeasured(c, 30*time.Second); err != nil {
			return fmt.Errorf("%s: %w", h.names[i], err)
		}
	}

	gc := &benchClient{base: h.gwListen.URL, hc: h.gwListen.Client()}
	body, err := gc.postJSON("/v1/retrain", server.RetrainRequest{})
	if err != nil {
		return err
	}
	var bc cluster.BroadcastResponse
	if err := json.Unmarshal(body, &bc); err != nil {
		return err
	}
	res.RetrainOK = bc.OK
	if bc.Failed > 0 {
		return fmt.Errorf("retrain failed on %d nodes", bc.Failed)
	}

	// Every node with enough samples registered a candidate version
	// (promoted or gate-rejected). Roll the newest out cluster-wide by
	// broadcast activation so the actives converge on it.
	candidate := 0
	for _, n := range bc.Nodes {
		var rr server.RetrainResponse
		if json.Unmarshal(n.Response, &rr) != nil {
			continue
		}
		for _, rep := range rr.Reports {
			if rep.Target != schedfilter.DefaultTargetName {
				continue
			}
			if rep.Version > candidate {
				candidate = rep.Version
			}
			if rep.Promoted {
				res.RetrainPromoted++
			}
		}
	}
	if candidate > 0 {
		body, err = gc.postJSON(fmt.Sprintf("/v1/filters/%d/activate", candidate),
			server.FilterActionRequest{})
		if err != nil {
			return fmt.Errorf("activate v%d: %w", candidate, err)
		}
		var ac cluster.BroadcastResponse
		if err := json.Unmarshal(body, &ac); err != nil {
			return err
		}
		if ac.Failed > 0 {
			return fmt.Errorf("activate v%d failed on %d nodes", candidate, ac.Failed)
		}
		res.ActivatedVersion = candidate
	}

	body, err = gc.get("/v1/cluster")
	if err != nil {
		return err
	}
	var cr cluster.ClusterResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		return err
	}
	if cr.Healthy != cfg.Nodes {
		return fmt.Errorf("%d/%d nodes healthy", cr.Healthy, cfg.Nodes)
	}
	for _, tc := range cr.Convergence {
		if tc.Target != schedfilter.DefaultTargetName {
			continue
		}
		res.Converged = tc.Converged
		res.HashConverged = tc.HashConverged
		for node, v := range tc.Versions {
			res.Versions[node] = v
		}
	}
	if len(res.Versions) == 0 {
		return fmt.Errorf("no convergence report for target %s", schedfilter.DefaultTargetName)
	}
	return nil
}

// runRouting sends every workload through the gateway twice and checks
// each answer against the ring's predicted primary.
func runRouting(h *clusterHarness, cfg ClusterConfig, res *ClusterResult) error {
	gc := &benchClient{base: h.gwListen.URL, hc: h.gwListen.Client()}
	res.RoutingDeterministic = true
	for _, w := range cfg.Workloads {
		want := h.gw.Preference(cluster.RoutingKey("", "", w, ""))[0]
		res.Routing[w] = want
		for round := 0; round < 2; round++ {
			node, err := gc.scheduleNode(server.ScheduleRequest{
				ProgramInput: server.ProgramInput{Workload: w},
				FilterSpec:   server.FilterSpec{Filter: "LS"},
			})
			if err != nil {
				return err
			}
			if node != want {
				res.RoutingDeterministic = false
			}
		}
	}
	return nil
}

// runPhase fires the round-robin request stream at one gateway and
// tallies which node answered each request.
func runPhase(base string, nodes int, cfg ClusterConfig) (ClusterPhase, error) {
	ph := ClusterPhase{Nodes: nodes, Requests: cfg.Requests, NodeRequests: map[string]int{}}
	gc := &benchClient{base: base, hc: &http.Client{Timeout: 120 * time.Second}}
	var (
		next     atomic.Int64
		latSum   atomic.Int64
		firstErr atomic.Value
		mu       sync.Mutex
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Requests) {
					return
				}
				t0 := time.Now()
				node, err := gc.scheduleNode(server.ScheduleRequest{
					ProgramInput: server.ProgramInput{Workload: cfg.Workloads[int(i)%len(cfg.Workloads)]},
					FilterSpec:   server.FilterSpec{Filter: "LS"},
				})
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				latSum.Add(time.Since(t0).Nanoseconds())
				mu.Lock()
				ph.NodeRequests[node]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return ph, err
	}
	wall := time.Since(start)
	ph.WallNs = wall.Nanoseconds()
	ph.ReqPerSec = float64(cfg.Requests) / wall.Seconds()
	ph.AvgNs = latSum.Load() / int64(cfg.Requests)
	return ph, nil
}

// runBatch fans one item per workload across the shards in a single
// /v1/batch call.
func runBatch(h *clusterHarness, cfg ClusterConfig, res *ClusterResult) error {
	gc := &benchClient{base: h.gwListen.URL, hc: h.gwListen.Client()}
	items := make([]json.RawMessage, len(cfg.Workloads))
	for i, w := range cfg.Workloads {
		buf, err := json.Marshal(server.ScheduleRequest{
			ProgramInput: server.ProgramInput{Workload: w},
			FilterSpec:   server.FilterSpec{Filter: "LS"},
		})
		if err != nil {
			return err
		}
		items[i] = buf
	}
	body, err := gc.postJSON("/v1/batch", cluster.BatchRequest{Op: "schedule", Items: items})
	if err != nil {
		return err
	}
	var br cluster.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		return err
	}
	if br.Failed > 0 {
		return fmt.Errorf("%d batch items failed", br.Failed)
	}
	res.BatchOK = br.OK
	res.BatchNodes = br.Nodes
	return nil
}

// Render prints the benchmark as text.
func (r *ClusterResult) Render() string {
	var b strings.Builder
	title := fmt.Sprintf("Cluster gateway: %d backends, %d reqs x %d clients per phase",
		r.Nodes, r.Requests, r.Concurrency)
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("-", len(title)))

	verdict := "NOT converged"
	if r.Converged {
		verdict = "converged"
		if r.HashConverged {
			verdict = "converged (versions and rule hashes)"
		}
	}
	nodes := make([]string, 0, len(r.Versions))
	for n := range r.Versions {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = fmt.Sprintf("%s=v%d", n, r.Versions[n])
	}
	rollout := "no candidate induced"
	if r.ActivatedVersion > 0 {
		rollout = fmt.Sprintf("v%d activated cluster-wide (%d/%d promoted by gate)",
			r.ActivatedVersion, r.RetrainPromoted, r.RetrainOK)
	}
	fmt.Fprintf(&b, "replication: retrain broadcast ok on %d nodes, %s, %s — %s\n",
		r.RetrainOK, rollout, verdict, strings.Join(parts, " "))

	det := "deterministic"
	if !r.RoutingDeterministic {
		det = "NOT deterministic"
	}
	fmt.Fprintf(&b, "routing (%s):", det)
	ws := append([]string(nil), r.Workloads...)
	sort.Strings(ws)
	for _, w := range ws {
		fmt.Fprintf(&b, " %s→%s", w, r.Routing[w])
	}
	fmt.Fprintln(&b)

	phase := func(name string, p ClusterPhase) {
		ns := make([]string, 0, len(p.NodeRequests))
		for n := range p.NodeRequests {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		mix := make([]string, len(ns))
		for i, n := range ns {
			mix[i] = fmt.Sprintf("%s×%d", n, p.NodeRequests[n])
		}
		fmt.Fprintf(&b, "%-14s %d nodes, %d reqs, %7.1f req/s, avg %v  [%s]\n",
			name, p.Nodes, p.Requests, p.ReqPerSec,
			time.Duration(p.AvgNs).Round(time.Microsecond), strings.Join(mix, " "))
	}
	phase("single-node:", r.Single)
	phase("multi-node:", r.Multi)
	fmt.Fprintf(&b, "throughput: %.2fx multi vs single (in-process, informational)\n", r.Speedup)

	bs := make([]string, 0, len(r.BatchNodes))
	for n := range r.BatchNodes {
		bs = append(bs, n)
	}
	sort.Strings(bs)
	bmix := make([]string, len(bs))
	for i, n := range bs {
		bmix[i] = fmt.Sprintf("%s×%d", n, r.BatchNodes[n])
	}
	fmt.Fprintf(&b, "batch: %d items ok across [%s]\n", r.BatchOK, strings.Join(bmix, " "))
	return b.String()
}

// WriteJSON writes the BENCH_cluster.json artifact.
func (r *ClusterResult) WriteJSON(path string) error { return experiments.WriteJSON(path, r) }

// postJSON POSTs one JSON value and returns the 200 body; non-2xx
// responses become errors carrying the service's error text.
func (c *benchClient) postJSON(path string, v any) ([]byte, error) {
	buf, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("%s: %s (HTTP %d)", path, e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return body, nil
}

// get fetches one path and returns the 200 body.
func (c *benchClient) get(path string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return body, nil
}

// waitMeasured blocks until a backend's asynchronous measurement queue
// has labelled every enqueued sample (online_samples_measured_total has
// caught up with online_blocks_enqueued_total on /metrics). Retraining
// before that point would see an empty reservoir.
func waitMeasured(c *benchClient, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		body, err := c.get("/metrics")
		if err != nil {
			return err
		}
		enq := metricValue(body, "online_blocks_enqueued_total")
		meas := metricValue(body, "online_samples_measured_total")
		if enq > 0 && meas >= enq {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("measurement queue not drained: %d/%d samples measured", meas, enq)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricValue pulls one un-labelled counter out of a Prometheus text
// exposition; absent metrics read as 0.
func metricValue(body []byte, name string) int64 {
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(rest, "%d", &v); err == nil {
			return v
		}
	}
	return 0
}

// scheduleNode runs one schedule request and returns which node
// answered it (the X-Sched-Node header).
func (c *benchClient) scheduleNode(req server.ScheduleRequest) (string, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Post(c.base+"/v1/schedule", "application/json", bytes.NewReader(buf))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return "", fmt.Errorf("schedule: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return "", fmt.Errorf("schedule: HTTP %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Sched-Node"), nil
}
