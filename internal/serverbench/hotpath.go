package serverbench

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"schedfilter/internal/codecache"
	"schedfilter/internal/experiments"
	"schedfilter/internal/ir"
	"schedfilter/internal/jit"
	"schedfilter/internal/machine"
	"schedfilter/internal/sched"
	"schedfilter/internal/workloads"
)

// The hot-path suite measures the per-block compile path in isolation:
// DAG construction and list scheduling on the reduced-edge pooled path
// against the retained reference builder, over every basic block the
// bundled workloads compile to, plus the singleflight dedupe layer. The
// result is the BENCH_hotpath.json artifact (cmd/schedexp -exp hotpath
// -json).
//
// The artifact splits into a deterministic substructure — corpus shape,
// edge counts, schedule equivalence, rounded allocation counts, and the
// constructed coalescing outcome — that must be identical across runs on
// any host (CI regenerates it twice and diffs), and a timing section
// whose numbers vary with the measuring hardware.

// HotpathConfig parameterizes the suite.
type HotpathConfig struct {
	// Workloads names the bundled benchmarks whose blocks form the
	// corpus; empty selects all.
	Workloads []string
	// Target names the machine target (registry name); empty selects the
	// default.
	Target string
	// Reps is how many times each timing pass sweeps the corpus; 0
	// selects 10.
	Reps int
	// Followers is the stampede size of the coalescing construction; 0
	// selects 8.
	Followers int
}

func (c HotpathConfig) withDefaults() HotpathConfig {
	if len(c.Workloads) == 0 {
		for _, w := range workloads.All() {
			c.Workloads = append(c.Workloads, w.Name)
		}
	}
	if c.Target == "" {
		c.Target = machine.DefaultTargetName
	}
	if c.Reps <= 0 {
		c.Reps = 10
	}
	if c.Followers <= 0 {
		c.Followers = 8
	}
	return c
}

// HotpathDeterministic is the run-to-run stable part of the artifact.
type HotpathDeterministic struct {
	Target    string   `json:"target"`
	Workloads []string `json:"workloads"`
	// Blocks and Instrs describe the corpus (every basic block of every
	// workload, compiled with default options).
	Blocks int `json:"blocks"`
	Instrs int `json:"instrs"`

	// Edge totals over the corpus: the reference builder's full
	// dependence graphs vs the reduced builder's chain-carried graphs.
	ReferenceEdges   int     `json:"reference_edges"`
	ReducedEdges     int     `json:"reduced_edges"`
	EdgeReductionPct float64 `json:"edge_reduction_pct"`

	// SchedulesIdentical reports that every block's Result — order,
	// cycles, cost — is identical on both paths; the invariant the whole
	// rework is conditioned on.
	SchedulesIdentical bool `json:"schedules_identical"`

	// Rounded allocation counts (allocations per block, nearest integer;
	// exact floats are in the timing section). The pooled build path must
	// round to 0 and the pooled build+schedule path to its single Result
	// allocation.
	BuildAllocsPerBlock    int `json:"build_allocs_per_block"`
	SchedAllocsPerBlock    int `json:"sched_allocs_per_block"`
	SchedRefAllocsPerBlock int `json:"sched_ref_allocs_per_block"`

	// Coalescing, constructed rather than raced: one leader is held in
	// flight while Followers identical requests pile on, so the hit rate
	// is exact. Without the flight every one of those requests would have
	// run its own pass (hit rate 0).
	FlightRequests  int     `json:"flight_requests"`
	FlightLeaders   int     `json:"flight_leaders"`
	FlightCoalesced int     `json:"flight_coalesced"`
	FlightHitRate   float64 `json:"flight_hit_rate"`
}

// HotpathTiming is the host-dependent part of the artifact.
type HotpathTiming struct {
	Reps int `json:"reps"`

	// DAG construction alone, ns per block and blocks per second.
	BuildRefNsPerBlock   int64   `json:"build_ref_ns_per_block"`
	BuildNewNsPerBlock   int64   `json:"build_new_ns_per_block"`
	BuildRefBlocksPerSec int64   `json:"build_ref_blocks_per_sec"`
	BuildNewBlocksPerSec int64   `json:"build_new_blocks_per_sec"`
	BuildSpeedup         float64 `json:"build_speedup"`

	// Full pass (build + schedule), ns per block and blocks per second.
	SchedRefNsPerBlock   int64   `json:"sched_ref_ns_per_block"`
	SchedNewNsPerBlock   int64   `json:"sched_new_ns_per_block"`
	SchedRefBlocksPerSec int64   `json:"sched_ref_blocks_per_sec"`
	SchedNewBlocksPerSec int64   `json:"sched_new_blocks_per_sec"`
	SchedSpeedup         float64 `json:"sched_speedup"`

	// Exact allocation counts per block (the deterministic section holds
	// the rounded ones).
	BuildAllocsPerBlock    float64 `json:"build_allocs_per_block"`
	SchedAllocsPerBlock    float64 `json:"sched_allocs_per_block"`
	SchedRefAllocsPerBlock float64 `json:"sched_ref_allocs_per_block"`
}

// HotpathResult is the BENCH_hotpath.json artifact.
type HotpathResult struct {
	Deterministic HotpathDeterministic `json:"deterministic"`
	Timing        HotpathTiming        `json:"timing"`
}

// RunHotpath compiles the corpus and measures both scheduler paths.
func RunHotpath(cfg HotpathConfig) (*HotpathResult, error) {
	cfg = cfg.withDefaults()
	tgt, err := machine.ByName(cfg.Target)
	if err != nil {
		return nil, err
	}
	m := tgt.Model
	sort.Strings(cfg.Workloads)

	res := &HotpathResult{
		Deterministic: HotpathDeterministic{Target: tgt.Name, Workloads: cfg.Workloads},
		Timing:        HotpathTiming{Reps: cfg.Reps},
	}
	det := &res.Deterministic
	tim := &res.Timing

	var corpus [][]ir.Instr
	for _, name := range cfg.Workloads {
		w := workloads.ByName(name)
		if w == nil {
			return nil, fmt.Errorf("hotpath: unknown workload %q", name)
		}
		mod, err := w.Compile()
		if err != nil {
			return nil, err
		}
		prog, err := jit.Compile(mod, jit.Options{})
		if err != nil {
			return nil, err
		}
		for _, fn := range prog.Fns {
			for _, b := range fn.Blocks {
				corpus = append(corpus, b.Instrs)
				det.Instrs += len(b.Instrs)
			}
		}
	}
	det.Blocks = len(corpus)
	if det.Blocks == 0 {
		return nil, fmt.Errorf("hotpath: empty corpus")
	}

	// Equivalence and edge counts: one sweep on each path, results
	// compared block by block.
	det.SchedulesIdentical = true
	scratch := sched.NewScratch()
	for _, instrs := range corpus {
		det.ReferenceEdges += sched.BuildDAGReference(m, instrs).NumEdges()
		det.ReducedEdges += sched.BuildDAGScratch(m, instrs, scratch).NumEdges()
		ref := sched.ScheduleInstrsReference(m, instrs)
		got := sched.ScheduleInstrsScratch(m, instrs, scratch)
		if !reflect.DeepEqual(ref, got) {
			det.SchedulesIdentical = false
		}
	}
	if det.ReferenceEdges > 0 {
		det.EdgeReductionPct = 100 * float64(det.ReferenceEdges-det.ReducedEdges) / float64(det.ReferenceEdges)
	}

	// Timing sweeps. The pooled paths reuse one scratch, matching how the
	// server's scheduling pass runs them.
	blocks := int64(det.Blocks) * int64(cfg.Reps)
	buildRef := func() {
		for _, instrs := range corpus {
			sched.BuildDAGReference(m, instrs)
		}
	}
	buildNew := func() {
		for _, instrs := range corpus {
			sched.BuildDAGScratch(m, instrs, scratch)
		}
	}
	schedRef := func() {
		for _, instrs := range corpus {
			sched.ScheduleInstrsReference(m, instrs)
		}
	}
	schedNew := func() {
		for _, instrs := range corpus {
			sched.ScheduleInstrsScratch(m, instrs, scratch)
		}
	}
	tim.BuildRefNsPerBlock = timeSweepNs(cfg.Reps, buildRef) / blocks
	tim.BuildNewNsPerBlock = timeSweepNs(cfg.Reps, buildNew) / blocks
	tim.SchedRefNsPerBlock = timeSweepNs(cfg.Reps, schedRef) / blocks
	tim.SchedNewNsPerBlock = timeSweepNs(cfg.Reps, schedNew) / blocks
	tim.BuildRefBlocksPerSec = perSec(tim.BuildRefNsPerBlock)
	tim.BuildNewBlocksPerSec = perSec(tim.BuildNewNsPerBlock)
	tim.SchedRefBlocksPerSec = perSec(tim.SchedRefNsPerBlock)
	tim.SchedNewBlocksPerSec = perSec(tim.SchedNewNsPerBlock)
	if tim.BuildNewNsPerBlock > 0 {
		tim.BuildSpeedup = float64(tim.BuildRefNsPerBlock) / float64(tim.BuildNewNsPerBlock)
	}
	if tim.SchedNewNsPerBlock > 0 {
		tim.SchedSpeedup = float64(tim.SchedRefNsPerBlock) / float64(tim.SchedNewNsPerBlock)
	}

	// Allocation counts, per block. buildNew reuses the warmed scratch,
	// so its steady state is allocation-free.
	perBlock := float64(det.Blocks)
	tim.BuildAllocsPerBlock = allocsPerSweep(buildNew) / perBlock
	tim.SchedAllocsPerBlock = allocsPerSweep(schedNew) / perBlock
	tim.SchedRefAllocsPerBlock = allocsPerSweep(schedRef) / perBlock
	det.BuildAllocsPerBlock = int(math.Round(tim.BuildAllocsPerBlock))
	det.SchedAllocsPerBlock = int(math.Round(tim.SchedAllocsPerBlock))
	det.SchedRefAllocsPerBlock = int(math.Round(tim.SchedRefAllocsPerBlock))

	measureFlight(det, cfg.Followers)
	return res, nil
}

// timeSweepNs times reps calls of sweep, after one unmeasured warm-up.
func timeSweepNs(reps int, sweep func()) int64 {
	sweep()
	start := time.Now()
	for i := 0; i < reps; i++ {
		sweep()
	}
	return time.Since(start).Nanoseconds()
}

func perSec(nsPerBlock int64) int64 {
	if nsPerBlock <= 0 {
		return 0
	}
	return int64(time.Second) / nsPerBlock
}

// allocsPerSweep counts the heap allocations of one sweep() call,
// averaged over several runs on a quiesced heap (single goroutine, the
// suite is otherwise idle).
func allocsPerSweep(sweep func()) float64 {
	const reps = 10
	sweep() // warm to steady state, outside the measurement
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		sweep()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(reps)
}

// measureFlight constructs the coalescing outcome instead of racing for
// it: the leader is held in flight until every follower has registered,
// so exactly one pass serves followers+1 requests.
func measureFlight(det *HotpathDeterministic, followers int) {
	var fl codecache.Flight
	var key codecache.Key
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		fl.Do(key, func() any {
			close(leaderIn)
			<-release
			return nil
		})
		close(done)
	}()
	<-leaderIn
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fl.Do(key, func() any { return nil })
		}()
	}
	for fl.Stats().Coalesced < int64(followers) {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	<-done

	st := fl.Stats()
	det.FlightRequests = followers + 1
	det.FlightLeaders = int(st.Leaders)
	det.FlightCoalesced = int(st.Coalesced)
	det.FlightHitRate = float64(st.Coalesced) / float64(followers+1)
}

// Render formats the artifact for the terminal.
func (r *HotpathResult) Render() string {
	d, t := r.Deterministic, r.Timing
	var b strings.Builder
	title := fmt.Sprintf("Scheduler hot path: reduced DAG + bucket ready list vs reference (%s, %d blocks / %d instrs)",
		d.Target, d.Blocks, d.Instrs)
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(&b, "edges: %d reference → %d reduced (%.1f%% fewer), schedules identical: %v\n",
		d.ReferenceEdges, d.ReducedEdges, d.EdgeReductionPct, d.SchedulesIdentical)
	fmt.Fprintf(&b, "%-16s %12s %12s %9s\n", "", "reference", "new", "speedup")
	fmt.Fprintf(&b, "%-16s %10dns %10dns %8.1fx\n", "DAG build/block",
		t.BuildRefNsPerBlock, t.BuildNewNsPerBlock, t.BuildSpeedup)
	fmt.Fprintf(&b, "%-16s %10dns %10dns %8.1fx\n", "build+sched/block",
		t.SchedRefNsPerBlock, t.SchedNewNsPerBlock, t.SchedSpeedup)
	fmt.Fprintf(&b, "%-16s %11d/s %11d/s\n", "blocks/sec",
		t.SchedRefBlocksPerSec, t.SchedNewBlocksPerSec)
	fmt.Fprintf(&b, "allocs/block: build %.2f, build+sched %.2f (reference %.2f)\n",
		t.BuildAllocsPerBlock, t.SchedAllocsPerBlock, t.SchedRefAllocsPerBlock)
	fmt.Fprintf(&b, "singleflight: %d identical requests → %d pass, %d coalesced (hit rate %.1f%%; 0%% without the flight)\n",
		d.FlightRequests, d.FlightLeaders, d.FlightCoalesced, 100*d.FlightHitRate)
	return b.String()
}

// WriteJSON writes the artifact (the BENCH_hotpath.json file tracked
// across PRs) through the shared artifact path.
func (r *HotpathResult) WriteJSON(path string) error { return experiments.WriteJSON(path, r) }
