package serverbench

import (
	"encoding/json"
	"reflect"
	"testing"
)

// testHotpathConfig keeps the test corpus small (two workloads, two
// timing reps) so the suite stays fast; the committed artifact uses the
// full default config via cmd/schedexp.
var testHotpathConfig = HotpathConfig{
	Workloads: []string{"compress", "raytrace"},
	Reps:      2,
	Followers: 5,
}

// TestHotpathDeterministic regenerates the artifact twice and requires
// the deterministic substructure to match exactly — the property CI's
// double-run check of BENCH_hotpath.json rests on.
func TestHotpathDeterministic(t *testing.T) {
	a, err := RunHotpath(testHotpathConfig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHotpath(testHotpathConfig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Deterministic, b.Deterministic) {
		aj, _ := json.MarshalIndent(a.Deterministic, "", "  ")
		bj, _ := json.MarshalIndent(b.Deterministic, "", "  ")
		t.Fatalf("deterministic substructure diverged between runs:\n%s\nvs\n%s", aj, bj)
	}
}

// TestHotpathInvariants checks the suite's acceptance properties on a
// live run: identical schedules, a strictly reduced edge set, the pooled
// allocation budget, and the exact constructed coalescing outcome.
func TestHotpathInvariants(t *testing.T) {
	res, err := RunHotpath(testHotpathConfig)
	if err != nil {
		t.Fatal(err)
	}
	d, tim := res.Deterministic, res.Timing
	if d.Blocks == 0 || d.Instrs == 0 {
		t.Fatalf("empty corpus: %+v", d)
	}
	if !d.SchedulesIdentical {
		t.Fatal("new path's schedules diverged from the reference path")
	}
	if d.ReducedEdges >= d.ReferenceEdges {
		t.Fatalf("reduced builder emitted %d edges, reference %d — no reduction",
			d.ReducedEdges, d.ReferenceEdges)
	}
	if d.BuildAllocsPerBlock != 0 {
		t.Fatalf("pooled DAG build allocates %d/block (exact %.3f), want 0",
			d.BuildAllocsPerBlock, tim.BuildAllocsPerBlock)
	}
	if d.SchedAllocsPerBlock > 1 {
		t.Fatalf("pooled build+schedule allocates %d/block (exact %.3f), want <= 1",
			d.SchedAllocsPerBlock, tim.SchedAllocsPerBlock)
	}
	if d.FlightLeaders != 1 || d.FlightCoalesced != testHotpathConfig.Followers {
		t.Fatalf("flight outcome %+v, want 1 leader and %d coalesced",
			d, testHotpathConfig.Followers)
	}
	if tim.BuildRefNsPerBlock <= 0 || tim.BuildNewNsPerBlock <= 0 {
		t.Fatalf("timing did not run: %+v", tim)
	}
}
