// Package serverbench benchmarks the compile service end to end: it
// boots internal/server behind an in-process HTTP listener, fires one
// cold schedule request per workload followed by a concurrent warm
// phase of identical requests, and reports request latency, scheduling
// cost, and scheduled-block cache effectiveness — with the server-side
// /metrics counters cross-checked against the per-response accounting.
//
// The result is the BENCH_server.json artifact (cmd/schedexp -exp
// server -json), the server-side counterpart of BENCH_adaptive.json.
package serverbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"schedfilter/internal/experiments"
	"schedfilter/internal/server"
	"schedfilter/internal/workloads"
)

// Config parameterizes the benchmark.
type Config struct {
	// Workloads names the bundled benchmarks to drive; empty selects all.
	Workloads []string
	// Requests is the number of warm (repeated, identical) requests per
	// workload after the cold one; 0 selects 16.
	Requests int
	// Concurrency is the number of concurrent clients in the warm phase;
	// 0 selects 4.
	Concurrency int
	// Filter is the per-request filter selector sent to the server
	// ("LS", "NS", "size:N", "default"); empty selects LS so every block
	// goes through the scheduler and the cache carries the full load.
	Filter string
	// Server configures the service under test (pool size, cache bound,
	// default filter, ...). The zero value selects the server defaults.
	Server server.Config
}

func (c Config) withDefaults() Config {
	if len(c.Workloads) == 0 {
		for _, w := range workloads.All() {
			c.Workloads = append(c.Workloads, w.Name)
		}
	}
	if c.Requests <= 0 {
		c.Requests = 16
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Filter == "" {
		c.Filter = "LS"
	}
	return c
}

// Row is one workload's numbers.
type Row struct {
	Workload string `json:"workload"`

	// Program shape and filter decisions, from the cold response.
	Blocks    int `json:"blocks"`
	Scheduled int `json:"scheduled"`

	// Cold request: the cache is empty, every approved block runs the
	// list scheduler.
	ColdNs      int64 `json:"cold_ns"`
	ColdSchedNs int64 `json:"cold_sched_ns"`
	ColdMisses  int   `json:"cold_misses"`

	// Warm phase: Requests identical requests at Concurrency clients.
	WarmReqs       int   `json:"warm_reqs"`
	WarmAvgNs      int64 `json:"warm_avg_ns"`
	WarmMaxNs      int64 `json:"warm_max_ns"`
	WarmSchedAvgNs int64 `json:"warm_sched_avg_ns"`
	WarmHits       int64 `json:"warm_hits"`
	WarmMisses     int64 `json:"warm_misses"`

	// SchedulerRuns is the server-side scheduler_runs_total delta over
	// the warm phase, scraped from /metrics: on a repeated workload it
	// should be zero (every block replayed from the cache).
	SchedulerRuns int64 `json:"scheduler_runs_warm"`
}

// HitRate is the warm-phase cache hit rate.
func (r Row) HitRate() float64 {
	if r.WarmHits+r.WarmMisses == 0 {
		return 0
	}
	return float64(r.WarmHits) / float64(r.WarmHits+r.WarmMisses)
}

// Result holds the whole benchmark.
type Result struct {
	Filter      string `json:"filter"`
	Requests    int    `json:"requests_per_workload"`
	Concurrency int    `json:"concurrency"`
	Rows        []Row  `json:"rows"`

	// Aggregates over all workloads' warm phases.
	WarmHits      int64   `json:"warm_hits"`
	WarmMisses    int64   `json:"warm_misses"`
	WarmHitRate   float64 `json:"warm_hit_rate"`
	SchedulerRuns int64   `json:"scheduler_runs_warm"`
	// SchedSpeedup is Σ cold scheduling time / mean warm scheduling time,
	// per request: what the cache buys on a repeated workload.
	SchedSpeedup float64 `json:"sched_speedup"`
}

// Run executes the benchmark against a fresh in-process server.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	srv := server.New(cfg.Server)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	c := &benchClient{base: ts.URL, hc: ts.Client()}

	res := &Result{Filter: cfg.Filter, Requests: cfg.Requests, Concurrency: cfg.Concurrency}
	var coldSched, warmSched, warmN int64
	for _, name := range cfg.Workloads {
		row, err := c.benchWorkload(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		res.Rows = append(res.Rows, row)
		res.WarmHits += row.WarmHits
		res.WarmMisses += row.WarmMisses
		res.SchedulerRuns += row.SchedulerRuns
		coldSched += row.ColdSchedNs
		warmSched += row.WarmSchedAvgNs * int64(row.WarmReqs)
		warmN += int64(row.WarmReqs)
	}
	if res.WarmHits+res.WarmMisses > 0 {
		res.WarmHitRate = float64(res.WarmHits) / float64(res.WarmHits+res.WarmMisses)
	}
	if warmN > 0 && warmSched > 0 {
		res.SchedSpeedup = float64(coldSched) / (float64(warmSched) / float64(warmN)) / float64(len(res.Rows))
	}
	return res, nil
}

func (c *benchClient) benchWorkload(name string, cfg Config) (Row, error) {
	row := Row{Workload: name}
	req := server.ScheduleRequest{
		ProgramInput: server.ProgramInput{Workload: name},
		FilterSpec:   server.FilterSpec{Filter: cfg.Filter},
	}

	t0 := time.Now()
	cold, err := c.schedule(req)
	if err != nil {
		return row, err
	}
	row.ColdNs = time.Since(t0).Nanoseconds()
	row.Blocks = cold.Blocks
	row.Scheduled = cold.Scheduled
	row.ColdSchedNs = cold.SchedNs
	row.ColdMisses = cold.CacheMisses

	before, err := c.scrape()
	if err != nil {
		return row, err
	}

	var (
		hits, misses, schedNs atomic.Int64
		latSum, latMax        atomic.Int64
		next                  atomic.Int64
		firstErr              atomic.Value
		wg                    sync.WaitGroup
	)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(cfg.Requests) {
				r0 := time.Now()
				resp, err := c.schedule(req)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ns := time.Since(r0).Nanoseconds()
				latSum.Add(ns)
				for {
					old := latMax.Load()
					if ns <= old || latMax.CompareAndSwap(old, ns) {
						break
					}
				}
				hits.Add(int64(resp.CacheHits))
				misses.Add(int64(resp.CacheMisses))
				schedNs.Add(resp.SchedNs)
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return row, err
	}

	after, err := c.scrape()
	if err != nil {
		return row, err
	}
	row.WarmReqs = cfg.Requests
	row.WarmAvgNs = latSum.Load() / int64(cfg.Requests)
	row.WarmMaxNs = latMax.Load()
	row.WarmSchedAvgNs = schedNs.Load() / int64(cfg.Requests)
	row.WarmHits = hits.Load()
	row.WarmMisses = misses.Load()
	row.SchedulerRuns = after - before
	return row, nil
}

type benchClient struct {
	base string
	hc   *http.Client
}

func (c *benchClient) schedule(req server.ScheduleRequest) (*server.ScheduleResponse, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Post(c.base+"/v1/schedule", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("schedule: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("schedule: HTTP %d", resp.StatusCode)
	}
	var out server.ScheduleResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

var schedulerRunsRE = regexp.MustCompile(`(?m)^schedserved_scheduler_runs_total (\d+)$`)

// scrape reads the server-side scheduler-run counter from /metrics — the
// independent witness that warm requests skip the list scheduler.
func (c *benchClient) scrape() (int64, error) {
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	m := schedulerRunsRE.FindSubmatch(body)
	if m == nil {
		return 0, fmt.Errorf("metrics: schedserved_scheduler_runs_total not found")
	}
	return strconv.ParseInt(string(m[1]), 10, 64)
}

// Render prints the benchmark as a table.
func (r *Result) Render() string {
	var b strings.Builder
	title := fmt.Sprintf("Compile server: cold vs warm scheduling (filter %s, %d reqs x %d clients per workload)",
		r.Filter, r.Requests, r.Concurrency)
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(&b, "%-11s %7s %6s %10s %10s %10s %10s %8s %6s\n",
		"workload", "blocks", "sched", "cold", "warm-avg", "cold-schd", "warm-schd", "hit-rate", "runs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %7d %6d %10v %10v %10v %10v %7.1f%% %6d\n",
			row.Workload, row.Blocks, row.Scheduled,
			time.Duration(row.ColdNs).Round(time.Microsecond),
			time.Duration(row.WarmAvgNs).Round(time.Microsecond),
			time.Duration(row.ColdSchedNs).Round(time.Microsecond),
			time.Duration(row.WarmSchedAvgNs).Round(time.Microsecond),
			100*row.HitRate(), row.SchedulerRuns)
	}
	fmt.Fprintf(&b, "\nWarm phase: %d hits / %d misses (hit rate %.1f%%), %d scheduler runs,\n",
		r.WarmHits, r.WarmMisses, 100*r.WarmHitRate, r.SchedulerRuns)
	fmt.Fprintf(&b, "mean per-request scheduling %.0fx cheaper than the cold pass.\n", r.SchedSpeedup)
	return b.String()
}

// WriteJSON writes the benchmark as machine-readable JSON (the
// BENCH_server.json artifact) through the shared experiments code path.
func (r *Result) WriteJSON(path string) error { return experiments.WriteJSON(path, r) }
