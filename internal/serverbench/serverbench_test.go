package serverbench

import (
	"path/filepath"
	"strings"
	"testing"

	"schedfilter/internal/server"
)

// A small fast configuration: two workloads, LS filter, few requests.
func testConfig() Config {
	return Config{
		Workloads:   []string{"compress", "db"},
		Requests:    6,
		Concurrency: 3,
		Filter:      "LS",
		Server:      server.Config{Workers: 2},
	}
}

func TestRunWarmPhaseFullyCached(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Scheduled == 0 {
			t.Errorf("%s: no blocks scheduled under LS", row.Workload)
		}
		// Duplicate blocks hit the cache within the cold pass itself, so
		// cold misses equal the number of distinct scheduled blocks.
		if row.ColdMisses == 0 || row.ColdMisses > row.Scheduled {
			t.Errorf("%s: cold misses = %d, want in (0, %d]",
				row.Workload, row.ColdMisses, row.Scheduled)
		}
		if row.WarmMisses != 0 {
			t.Errorf("%s: warm misses = %d, want 0", row.Workload, row.WarmMisses)
		}
		if row.SchedulerRuns != 0 {
			t.Errorf("%s: %d scheduler runs in warm phase, want 0 (metrics counter)",
				row.Workload, row.SchedulerRuns)
		}
		wantHits := int64(row.Scheduled * row.WarmReqs)
		if row.WarmHits != wantHits {
			t.Errorf("%s: warm hits = %d, want %d", row.Workload, row.WarmHits, wantHits)
		}
	}
	if res.WarmHitRate != 1.0 {
		t.Errorf("aggregate warm hit rate = %v, want 1.0", res.WarmHitRate)
	}
}

func TestRenderAndWriteJSON(t *testing.T) {
	cfg := testConfig()
	cfg.Workloads = []string{"compress"}
	cfg.Requests = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"compress", "hit-rate", "Warm phase:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_server.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	cfg := testConfig()
	cfg.Workloads = []string{"no-such-bench"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("want error for unknown workload")
	}
}
