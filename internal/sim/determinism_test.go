package sim_test

// Satellite of the adaptive-tier PR: the adaptive controller's
// "future = past" reasoning is only sound if the profile itself is
// reproducible, so pin down that two timed runs of the same program
// observe the identical execution profile, and that the sampling hook
// sees consistent snapshots and can hot-swap safely.

import (
	"reflect"
	"testing"

	"schedfilter/internal/ir"
	"schedfilter/internal/jit"
	"schedfilter/internal/machine"
	"schedfilter/internal/sched"
	"schedfilter/internal/sim"
	"schedfilter/internal/training"
	"schedfilter/internal/workloads"
)

func compileWorkload(t *testing.T, name string) *ir.Program {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("no workload %q", name)
	}
	opts := training.DefaultOptions()
	mod, err := w.CompileWithOptions(opts.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := jit.Compile(mod, opts.JIT)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestTimedRunsDeterministic(t *testing.T) {
	m := machine.Default().Model
	for _, name := range []string{"compress", "scimark"} {
		prog := compileWorkload(t, name)
		first, err := sim.Run(prog, sim.Config{Timed: true, Model: m})
		if err != nil {
			t.Fatalf("%s: first run: %v", name, err)
		}
		second, err := sim.Run(prog, sim.Config{Timed: true, Model: m})
		if err != nil {
			t.Fatalf("%s: second run: %v", name, err)
		}
		if !reflect.DeepEqual(first.ExecCounts, second.ExecCounts) {
			t.Errorf("%s: ExecCounts differ between identical runs", name)
		}
		if !reflect.DeepEqual(first.TakenCounts, second.TakenCounts) {
			t.Errorf("%s: TakenCounts differ between identical runs", name)
		}
		if first.Cycles != second.Cycles {
			t.Errorf("%s: cycles %d != %d", name, first.Cycles, second.Cycles)
		}
		if first.DynInstrs != second.DynInstrs {
			t.Errorf("%s: dynamic instructions %d != %d", name, first.DynInstrs, second.DynInstrs)
		}
	}
}

func TestSampleEveryRequiresHook(t *testing.T) {
	prog := compileWorkload(t, "compress")
	_, err := sim.Run(prog, sim.Config{Timed: true, Model: machine.Default().Model, SampleEvery: 1000})
	if err == nil {
		t.Fatal("SampleEvery without OnSample should be rejected")
	}
}

func TestSamplingSnapshots(t *testing.T) {
	m := machine.Default().Model
	prog := compileWorkload(t, "compress")
	base, err := sim.Run(prog.Clone(), sim.Config{Timed: true, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*sim.Snapshot
	res, err := sim.Run(prog.Clone(), sim.Config{
		Timed:       true,
		Model:       m,
		SampleEvery: 10000,
		OnSample: func(s *sim.Snapshot) []sim.FnSwap {
			snaps = append(snaps, s)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots delivered")
	}
	if res.Ret != base.Ret {
		t.Errorf("sampling changed the result: %d != %d", res.Ret, base.Ret)
	}
	var prev int64
	for i, s := range snaps {
		if s.DynInstrs < prev {
			t.Errorf("snapshot %d: DynInstrs went backwards (%d < %d)", i, s.DynInstrs, prev)
		}
		prev = s.DynInstrs
		if len(s.ExecCounts) != len(prog.Fns) {
			t.Fatalf("snapshot %d: %d fn profiles, want %d", i, len(s.ExecCounts), len(prog.Fns))
		}
	}
	// Snapshots are copies: the last one must not alias the final result.
	last := snaps[len(snaps)-1]
	last.ExecCounts[0][0] += 1000000
	if res.ExecCounts[0][0] == last.ExecCounts[0][0] {
		t.Error("snapshot aliases the live profile arrays")
	}
}

func TestHotSwapAtSafePoint(t *testing.T) {
	m := machine.Default().Model
	prog := compileWorkload(t, "scimark")
	base, err := sim.Run(prog.Clone(), sim.Config{Timed: true, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	// At the first sample, swap in a list-scheduled clone of every
	// function that has executed so far.
	work := prog.Clone()
	swapped := false
	res, err := sim.Run(work, sim.Config{
		Timed:       true,
		Model:       m,
		SampleEvery: 5000,
		OnSample: func(s *sim.Snapshot) []sim.FnSwap {
			if swapped {
				return nil
			}
			swapped = true
			var swaps []sim.FnSwap
			for fi := range s.ExecCounts {
				var execs int64
				for _, c := range s.ExecCounts[fi] {
					execs += c
				}
				if execs == 0 {
					continue
				}
				nf := work.Fns[fi].Clone()
				sched.ScheduleFn(m, nf)
				swaps = append(swaps, sim.FnSwap{Fn: fi, NewFn: nf})
			}
			return swaps
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Fatal("no hot-swaps installed")
	}
	if res.Ret != base.Ret {
		t.Errorf("hot-swap changed the result: %d != %d", res.Ret, base.Ret)
	}
	if !reflect.DeepEqual(res.Output, base.Output) {
		t.Error("hot-swap changed the program output")
	}
	// List scheduling only permutes within blocks, so instruction counts
	// are conserved even as cycles change.
	if res.DynInstrs != base.DynInstrs {
		t.Errorf("hot-swap changed instruction count: %d != %d", res.DynInstrs, base.DynInstrs)
	}
}
