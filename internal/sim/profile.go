package sim

import "schedfilter/internal/ir"

// Profile sampling and safe-point hot-swapping: the executor hooks the
// adaptive optimization system (internal/adaptive) needs. A timed or
// functional run may register a sampling callback that fires every
// Config.SampleEvery executed instructions — always at a block entry, so
// the machine sits at a safe point — and receives a snapshot of the
// execution profile accumulated so far. The callback may hand back
// function replacements ("hot-swaps"); the executor installs each one at
// the first safe point where doing so cannot corrupt suspended frames.
//
// Sample points are deterministic (they are a function of the executed
// instruction count alone), so two runs with the same callback behaviour
// observe identical snapshots; the profile itself stays deterministic.

// Snapshot is one periodic view of the execution profile, handed to the
// sampling callback at a safe point.
type Snapshot struct {
	// DynInstrs is the number of instructions executed so far.
	DynInstrs int64
	// Cycles is the pipeline makespan so far (timed runs only).
	Cycles int64
	// ExecCounts[fn][block] are the cumulative block-entry counts — the
	// same profile Result.ExecCounts reports at the end of the run. The
	// slices are a copy; the callback may retain them.
	ExecCounts [][]int64
	// Installed lists the function indices hot-swapped since the
	// previous sample (installation feedback for the controller).
	Installed []int
}

// FnSwap asks the executor to replace a function with recompiled code at
// a safe point.
type FnSwap struct {
	// Fn is the index of the function to replace.
	Fn int
	// NewFn is the replacement. Replacing the function currently at the
	// top of the stack additionally requires an identical block skeleton
	// (same block count), so the resume position stays valid; scheduling
	// only permutes instructions within blocks, so recompiled code
	// always qualifies.
	NewFn *ir.Fn
}

// sample fires the sampling callback and applies any hot-swaps that are
// safe at this point. curFn is the function currently executing; control
// sits at one of its block entries.
func (ex *executor) sample(curFn int) {
	ex.nextSample = ex.res.DynInstrs + ex.sampleEvery
	snap := &Snapshot{
		DynInstrs:  ex.res.DynInstrs,
		ExecCounts: copyCounts(ex.res.ExecCounts),
		Installed:  ex.installed,
	}
	ex.installed = nil
	if ex.issue != nil {
		snap.Cycles = int64(ex.issue.Makespan())
	}
	for _, sw := range ex.onSample(snap) {
		if sw.NewFn != nil && sw.Fn >= 0 && sw.Fn < len(ex.p.Fns) {
			ex.pending[sw.Fn] = sw.NewFn
		}
	}
	ex.applyPending(curFn)
}

// applyPending installs every pending swap that is safe right now;
// unsafe ones stay pending and are retried at the next sample.
func (ex *executor) applyPending(curFn int) {
	for fi, nf := range ex.pending {
		if !ex.swapSafe(fi, curFn, nf) {
			continue
		}
		ex.p.Fns[fi] = nf
		// Keep the profile when the block skeleton is preserved (the
		// recompile-and-reschedule case); otherwise restart it.
		if len(nf.Blocks) != len(ex.res.ExecCounts[fi]) {
			ex.res.ExecCounts[fi] = make([]int64, len(nf.Blocks))
			ex.res.TakenCounts[fi] = make([]int64, len(nf.Blocks))
		}
		delete(ex.pending, fi)
		ex.installed = append(ex.installed, fi)
		ex.res.Swaps++
	}
}

// swapSafe reports whether replacing function fi is safe at this point.
// A function suspended in a caller frame holds a resume position into its
// old instruction order, so it must not be replaced; the function at the
// top of the stack sits at a block entry and may be replaced as long as
// the replacement keeps the block skeleton.
func (ex *executor) swapSafe(fi, curFn int, nf *ir.Fn) bool {
	for i := range ex.frames {
		if ex.frames[i].fn == fi {
			return false
		}
	}
	if fi == curFn && len(nf.Blocks) != len(ex.p.Fns[fi].Blocks) {
		return false
	}
	return true
}

func copyCounts(src [][]int64) [][]int64 {
	out := make([][]int64, len(src))
	for i, row := range src {
		out[i] = append([]int64(nil), row...)
	}
	return out
}
