// Package sim executes machine-IR programs. It is both the functional
// runtime (heap, call protocol, runtime services) used for differential
// testing against the bytecode interpreter, and — in timed mode — the
// whole-program cycle simulator behind the paper's "application running
// time" measurements: one in-order issue pipeline carried across basic
// blocks, with a bubble charged on taken control transfers.
//
// Simplifications versus real silicon, documented per the paper's own
// argument that only relative block timings matter: no caches (every load
// hits), a fixed taken-branch bubble instead of a branch predictor, and a
// "magic ABI" call protocol — the runtime saves and restores the full
// register file around calls (except return-value registers) and allocates
// spill frames itself. Allocation is a bump allocator; GC safe points
// exist but collection never triggers.
package sim

import (
	"fmt"
	"math"
	"strconv"

	"schedfilter/internal/ir"
	"schedfilter/internal/machine"
)

// Memory layout (word addresses).
const (
	// GlobalBase is where global slot 0 lives; r2 points here.
	GlobalBase = 16
	// DefaultMemWords is the default memory size (32 MiB).
	DefaultMemWords = 1 << 22
)

// Config controls a run.
type Config struct {
	// MemWords sizes the flat word-addressed memory; 0 means
	// DefaultMemWords.
	MemWords int
	// Timed enables the cycle pipeline (requires Model).
	Timed bool
	// Model is the machine timing model for timed runs.
	Model *machine.Model
	// StepLimit bounds executed instructions; 0 means a generous
	// default.
	StepLimit int64
	// SampleEvery, when positive, fires OnSample at the first block
	// entry (a safe point) after every SampleEvery executed
	// instructions. See profile.go.
	SampleEvery int64
	// OnSample receives periodic profile snapshots and may return
	// function hot-swaps to install at safe points. Required when
	// SampleEvery is set.
	OnSample func(*Snapshot) []FnSwap
}

// Result reports a completed run.
type Result struct {
	// Ret is main's return value (r3 at exit).
	Ret int64
	// Output records runtime prints, formatted identically to the
	// bytecode interpreter ("i:<v>" / "f:<v>").
	Output []string
	// DynInstrs counts executed machine instructions.
	DynInstrs int64
	// Cycles is the pipeline makespan (timed runs only).
	Cycles int64
	// ExecCounts[fn][block] counts block entries (the profile used for
	// the paper's weighted simulated-time metric).
	ExecCounts [][]int64
	// TakenCounts[fn][block] counts how often the block's terminating
	// conditional branch was taken (zero for blocks ending in B/BLR).
	// Together with ExecCounts this gives the edge profile superblock
	// formation needs.
	TakenCounts [][]int64
	// Swaps counts function hot-swaps installed at safe points (runs
	// with a sampling hook only).
	Swaps int
}

// Trap is a machine-level runtime error (the hardware analogue of a Java
// exception).
type Trap struct {
	Fn   string
	Kind string
}

func (t *Trap) Error() string { return fmt.Sprintf("sim: %s in %s", t.Kind, t.Fn) }

// State is the architectural state, exposed so tests can execute single
// blocks from arbitrary starting points.
type State struct {
	Regs  [ir.NumGPR]int64
	FRegs [ir.NumFPR]float64
	CRs   [ir.NumCond]int8
	Mem   []uint64

	// Guard results: guards are virtual, unbounded; stored sparsely.
	// Functionally they carry nothing, but keeping the map allows
	// debugging assertions.
	heapPtr int64
	out     []string
}

// NewState allocates a zeroed machine state with the given memory size.
func NewState(memWords int) *State {
	if memWords <= 0 {
		memWords = DefaultMemWords
	}
	s := &State{Mem: make([]uint64, memWords)}
	s.heapPtr = GlobalBase // heap starts after globals once layout is known
	return s
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := *s
	c.Mem = append([]uint64(nil), s.Mem...)
	c.out = append([]string(nil), s.out...)
	return &c
}

// Equal reports whether two states have identical registers and memory.
// Guard and output history are excluded.
func (s *State) Equal(o *State) bool {
	if s.Regs != o.Regs || s.CRs != o.CRs {
		return false
	}
	for i := range s.FRegs {
		a, b := s.FRegs[i], o.FRegs[i]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			return false
		}
	}
	if len(s.Mem) != len(o.Mem) {
		return false
	}
	for i := range s.Mem {
		if s.Mem[i] != o.Mem[i] {
			return false
		}
	}
	return true
}

type frame struct {
	fn, blk, idx int
	regs         [ir.NumGPR]int64
	fregs        [ir.NumFPR]float64
	crs          [ir.NumCond]int8
}

// Run executes the program from its entry function.
func Run(p *ir.Program, cfg Config) (*Result, error) {
	st := NewState(cfg.MemWords)
	limit := cfg.StepLimit
	if limit <= 0 {
		limit = 1 << 33
	}
	res := &Result{
		ExecCounts:  make([][]int64, len(p.Fns)),
		TakenCounts: make([][]int64, len(p.Fns)),
	}
	for i, f := range p.Fns {
		res.ExecCounts[i] = make([]int64, len(f.Blocks))
		res.TakenCounts[i] = make([]int64, len(f.Blocks))
	}

	// Layout: globals at GlobalBase, heap after, stack at the top.
	st.heapPtr = int64(GlobalBase + p.Globals)
	st.Regs[2] = GlobalBase
	st.Regs[1] = int64(len(st.Mem))

	var issue *machine.IssueState
	if cfg.Timed {
		if cfg.Model == nil {
			return nil, fmt.Errorf("sim: timed run requires a model")
		}
		issue = machine.NewIssueState(cfg.Model)
	}

	ex := &executor{p: p, st: st, res: res, issue: issue, limit: limit,
		bubble: 1}
	if cfg.Model != nil {
		ex.bubble = cfg.Model.TakenBranchBubble
	}
	if cfg.SampleEvery > 0 {
		if cfg.OnSample == nil {
			return nil, fmt.Errorf("sim: SampleEvery requires an OnSample hook")
		}
		ex.sampleEvery = cfg.SampleEvery
		ex.nextSample = cfg.SampleEvery
		ex.onSample = cfg.OnSample
		ex.pending = map[int]*ir.Fn{}
	}

	// Run $init (global initializers) before main, as the runtime does.
	if init := fnIndexByName(p, "$init"); init >= 0 {
		if err := ex.callAndRun(init); err != nil {
			return nil, err
		}
	}
	if err := ex.callAndRun(p.Entry); err != nil {
		return nil, err
	}
	res.Ret = st.Regs[3]
	res.Output = st.out
	if issue != nil {
		res.Cycles = int64(issue.Makespan())
	}
	return res, nil
}

func fnIndexByName(p *ir.Program, name string) int {
	for i, f := range p.Fns {
		if f.Name == name {
			return i
		}
	}
	return -1
}

type executor struct {
	p      *ir.Program
	st     *State
	res    *Result
	issue  *machine.IssueState
	frames []frame
	limit  int64
	bubble int

	// Profile-sampling hook state (see profile.go).
	sampleEvery int64
	nextSample  int64
	onSample    func(*Snapshot) []FnSwap
	pending     map[int]*ir.Fn
	installed   []int
}

// callAndRun invokes fn as the runtime would (fresh frame, run to return)
// and returns when the outermost call completes.
func (ex *executor) callAndRun(fnIdx int) error {
	baseDepth := len(ex.frames)
	ex.frames = append(ex.frames, frame{fn: -1}) // sentinel: return to runtime
	ex.st.Regs[1] -= int64(ex.p.Fns[fnIdx].FrameSlots)

	fn, blk, idx := fnIdx, ex.p.Fns[fnIdx].Entry, 0
	st := ex.st
	for {
		f := ex.p.Fns[fn]
		if idx == 0 {
			ex.res.ExecCounts[fn][blk]++
			if ex.sampleEvery > 0 && ex.res.DynInstrs >= ex.nextSample {
				ex.sample(fn)
				f = ex.p.Fns[fn] // the current function may have been hot-swapped
			}
		}
		b := f.Blocks[blk]
		if idx >= len(b.Instrs) {
			return fmt.Errorf("sim: control ran off the end of %s block %d", f.Name, blk)
		}
		in := &b.Instrs[idx]
		ex.res.DynInstrs++
		if ex.res.DynInstrs > ex.limit {
			return fmt.Errorf("sim: step limit (%d) exceeded in %s", ex.limit, f.Name)
		}
		if ex.issue != nil {
			ex.issue.Issue(in)
		}

		switch in.Op {
		case ir.B:
			blk, idx = in.Target, 0
			ex.chargeBubble()
			continue
		case ir.BC:
			if ir.EvalCond(in.Imm, st.CRs[in.Uses[0].N]) {
				ex.res.TakenCounts[fn][blk]++
				blk, idx = in.Target, 0
				ex.chargeBubble()
			} else {
				blk, idx = b.Succs[1], 0
			}
			continue
		case ir.BL:
			callee := ex.p.Fns[in.Target]
			fr := frame{fn: fn, blk: blk, idx: idx + 1}
			fr.regs = st.Regs
			fr.fregs = st.FRegs
			fr.crs = st.CRs
			ex.frames = append(ex.frames, fr)
			st.Regs[1] -= int64(callee.FrameSlots)
			if st.Regs[1] <= st.heapPtr {
				return &Trap{Fn: callee.Name, Kind: "stack overflow"}
			}
			fn, blk, idx = in.Target, callee.Entry, 0
			ex.chargeBubble()
			continue
		case ir.BLR:
			fr := ex.frames[len(ex.frames)-1]
			ex.frames = ex.frames[:len(ex.frames)-1]
			if fr.fn < 0 {
				// Returning to the runtime.
				if len(ex.frames) != baseDepth {
					return fmt.Errorf("sim: frame imbalance")
				}
				return nil
			}
			// The call protocol restores the caller's registers,
			// then delivers the return value in exactly the declared
			// return register (r3 or f1) — the other file is fully
			// preserved, matching BL's declared Defs.
			retI, retF := st.Regs[3], st.FRegs[1]
			st.Regs = fr.regs
			st.FRegs = fr.fregs
			st.CRs = fr.crs
			if f.RetFloat {
				st.FRegs[1] = retF
			} else {
				st.Regs[3] = retI
			}
			fn, blk, idx = fr.fn, fr.blk, fr.idx
			ex.chargeBubble()
			continue
		}

		if err := ex.st.step(in, ex.p.Fns[fn].Name); err != nil {
			return err
		}
		idx++
	}
}

func (ex *executor) chargeBubble() {
	if ex.issue != nil && ex.bubble > 0 {
		ex.issue.AdvanceTo(ex.issue.Cycle() + ex.bubble)
	}
}

// step executes one non-control instruction against the state.
func (s *State) step(in *ir.Instr, fnName string) error {
	R := func(i int) int64 { return s.Regs[in.Uses[i].N] }
	F := func(i int) float64 { return s.FRegs[in.Uses[i].N] }
	setI := func(v int64) { s.Regs[in.Defs[0].N] = v }
	setF := func(v float64) { s.FRegs[in.Defs[0].N] = v }

	switch in.Op {
	case ir.NOP, ir.YIELDPOINT, ir.TSPOINT:
	case ir.ADD:
		setI(R(0) + R(1))
	case ir.SUB:
		setI(R(0) - R(1))
	case ir.MULL:
		setI(R(0) * R(1))
	case ir.DIVW:
		if R(1) == 0 {
			return &Trap{Fn: fnName, Kind: "divide by zero"}
		}
		setI(R(0) / R(1))
	case ir.NEG:
		setI(-R(0))
	case ir.AND:
		setI(R(0) & R(1))
	case ir.OR:
		setI(R(0) | R(1))
	case ir.XOR:
		setI(R(0) ^ R(1))
	case ir.SLW:
		setI(R(0) << uint64(R(1)&63))
	case ir.SRAW:
		setI(R(0) >> uint64(R(1)&63))
	case ir.ADDI:
		setI(R(0) + in.Imm)
	case ir.ANDI:
		setI(R(0) & in.Imm)
	case ir.ORI:
		setI(R(0) | in.Imm)
	case ir.XORI:
		setI(R(0) ^ in.Imm)
	case ir.SLWI:
		setI(R(0) << uint64(in.Imm&63))
	case ir.SRAWI:
		setI(R(0) >> uint64(in.Imm&63))
	case ir.LI:
		setI(in.Imm)
	case ir.MR:
		setI(R(0))
	case ir.CMP:
		s.CRs[in.Defs[0].N] = sign(R(0) - R(1))
	case ir.CMPI:
		s.CRs[in.Defs[0].N] = sign(R(0) - in.Imm)
	case ir.FADD:
		setF(F(0) + F(1))
	case ir.FSUB:
		setF(F(0) - F(1))
	case ir.FMUL:
		setF(F(0) * F(1))
	case ir.FDIV:
		setF(F(0) / F(1))
	case ir.FNEG:
		setF(-F(0))
	case ir.FMR:
		setF(F(0))
	case ir.FCMP:
		s.CRs[in.Defs[0].N] = fsign(F(0), F(1))
	case ir.F2I:
		setI(int64(F(0)))
	case ir.I2F:
		setF(float64(R(0)))
	case ir.LFI:
		setF(in.FImm)
	case ir.LD:
		v, err := s.load(R(0)+in.Imm, fnName)
		if err != nil {
			return err
		}
		setI(int64(v))
	case ir.LDX:
		v, err := s.load(R(0)+R(1), fnName)
		if err != nil {
			return err
		}
		setI(int64(v))
	case ir.LFD:
		v, err := s.load(R(0)+in.Imm, fnName)
		if err != nil {
			return err
		}
		setF(math.Float64frombits(v))
	case ir.LFDX:
		v, err := s.load(R(0)+R(1), fnName)
		if err != nil {
			return err
		}
		setF(math.Float64frombits(v))
	case ir.ST:
		return s.store(R(1)+in.Imm, uint64(R(0)), fnName)
	case ir.STX:
		return s.store(R(1)+R(2), uint64(R(0)), fnName)
	case ir.STFD:
		return s.store(R(1)+in.Imm, math.Float64bits(F(0)), fnName)
	case ir.STFX:
		return s.store(R(1)+R(2), math.Float64bits(F(0)), fnName)
	case ir.ALLOC:
		n := R(0)
		if n < 0 {
			return &Trap{Fn: fnName, Kind: "negative allocation"}
		}
		addr := s.heapPtr
		if addr+n+1 >= s.Regs[1] {
			return &Trap{Fn: fnName, Kind: "out of memory"}
		}
		s.Mem[addr] = uint64(n)
		for i := int64(1); i <= n; i++ {
			s.Mem[addr+i] = 0
		}
		s.heapPtr = addr + n + 1
		setI(addr)
	case ir.NULLCHECK:
		if R(0) == 0 {
			return &Trap{Fn: fnName, Kind: "null pointer"}
		}
	case ir.BOUNDSCHECK:
		if R(0) < 0 || R(0) >= R(1) {
			return &Trap{Fn: fnName, Kind: "index out of bounds"}
		}
	case ir.RTPRINTI:
		s.out = append(s.out, "i:"+strconv.FormatInt(R(0), 10))
	case ir.RTPRINTF:
		s.out = append(s.out, "f:"+strconv.FormatFloat(F(0), 'g', 12, 64))
	default:
		return fmt.Errorf("sim: cannot execute %v", in.Op)
	}
	return nil
}

func (s *State) load(addr int64, fnName string) (uint64, error) {
	if addr <= 0 || addr >= int64(len(s.Mem)) {
		return 0, &Trap{Fn: fnName, Kind: fmt.Sprintf("bad load address %d", addr)}
	}
	return s.Mem[addr], nil
}

func (s *State) store(addr int64, v uint64, fnName string) error {
	if addr <= 0 || addr >= int64(len(s.Mem)) {
		return &Trap{Fn: fnName, Kind: fmt.Sprintf("bad store address %d", addr)}
	}
	s.Mem[addr] = v
	return nil
}

func sign(v int64) int8 {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

func fsign(a, b float64) int8 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// ExecBlock executes the straight-line (non-control) prefix of a block
// against the state, stopping at the first control-flow instruction. It is
// the oracle for the scheduling semantics-preservation property: a block
// and its scheduled permutation must leave identical states.
func ExecBlock(st *State, b *ir.Block) error {
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Op.IsBranchOp() {
			// Evaluate compare-dependent state only; control effects
			// are outside a single block's semantics.
			continue
		}
		if err := st.step(in, "block"); err != nil {
			return err
		}
	}
	return nil
}
