package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedfilter/internal/blockgen"
	"schedfilter/internal/ir"
	"schedfilter/internal/machine"
	"schedfilter/internal/sched"
)

// buildProg assembles a tiny one-function program by hand.
func buildProg(blocks []*ir.Block) *ir.Program {
	fn := &ir.Fn{Name: "main", Blocks: blocks}
	return &ir.Program{Fns: []*ir.Fn{fn}}
}

func TestRunStraightLine(t *testing.T) {
	b := &ir.Block{ID: 0, Instrs: []ir.Instr{
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(4)}, Imm: 20},
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(5)}, Imm: 22},
		{Op: ir.ADD, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(4), ir.GPR(5)}},
		{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}},
	}}
	res, err := Run(buildProg([]*ir.Block{b}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Errorf("ret = %d, want 42", res.Ret)
	}
	if res.DynInstrs != 4 {
		t.Errorf("executed %d instructions, want 4", res.DynInstrs)
	}
}

func TestRunLoopAndCounts(t *testing.T) {
	// r3 = 0; r4 = 10; loop: r3 += r4; r4 -= 1; if r4 > 0 goto loop; ret.
	entry := &ir.Block{ID: 0, Instrs: []ir.Instr{
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(3)}, Imm: 0},
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(4)}, Imm: 10},
		{Op: ir.B, Target: 1},
	}, Succs: []int{1}}
	loop := &ir.Block{ID: 1, Instrs: []ir.Instr{
		{Op: ir.ADD, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(3), ir.GPR(4)}},
		{Op: ir.ADDI, Defs: []ir.Reg{ir.GPR(4)}, Uses: []ir.Reg{ir.GPR(4)}, Imm: -1},
		{Op: ir.CMPI, Defs: []ir.Reg{ir.CR(0)}, Uses: []ir.Reg{ir.GPR(4)}, Imm: 0},
		{Op: ir.BC, Uses: []ir.Reg{ir.CR(0)}, Imm: ir.CondGT, Target: 1},
	}, Succs: []int{1, 2}, LoopHead: true}
	exit := &ir.Block{ID: 2, Instrs: []ir.Instr{
		{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}},
	}}
	res, err := Run(buildProg([]*ir.Block{entry, loop, exit}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 55 {
		t.Errorf("ret = %d, want 55", res.Ret)
	}
	if res.ExecCounts[0][1] != 10 {
		t.Errorf("loop executed %d times, want 10", res.ExecCounts[0][1])
	}
}

func TestTrapsSurface(t *testing.T) {
	cases := []struct {
		name string
		ins  []ir.Instr
		kind string
	}{
		{"div0", []ir.Instr{
			{Op: ir.LI, Defs: []ir.Reg{ir.GPR(4)}, Imm: 1},
			{Op: ir.LI, Defs: []ir.Reg{ir.GPR(5)}, Imm: 0},
			{Op: ir.DIVW, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(4), ir.GPR(5)}},
			{Op: ir.BLR},
		}, "divide by zero"},
		{"null", []ir.Instr{
			{Op: ir.LI, Defs: []ir.Reg{ir.GPR(4)}, Imm: 0},
			{Op: ir.NULLCHECK, Defs: []ir.Reg{ir.Guard(0)}, Uses: []ir.Reg{ir.GPR(4)}},
			{Op: ir.BLR},
		}, "null pointer"},
		{"bounds", []ir.Instr{
			{Op: ir.LI, Defs: []ir.Reg{ir.GPR(4)}, Imm: 5},
			{Op: ir.LI, Defs: []ir.Reg{ir.GPR(5)}, Imm: 3},
			{Op: ir.BOUNDSCHECK, Defs: []ir.Reg{ir.Guard(0)}, Uses: []ir.Reg{ir.GPR(4), ir.GPR(5)}},
			{Op: ir.BLR},
		}, "index out of bounds"},
		{"badload", []ir.Instr{
			{Op: ir.LI, Defs: []ir.Reg{ir.GPR(4)}, Imm: -9},
			{Op: ir.LD, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(4)}, Imm: 0},
			{Op: ir.BLR},
		}, "bad load address"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := &ir.Block{ID: 0, Instrs: c.ins}
			_, err := Run(buildProg([]*ir.Block{b}), Config{})
			trap, ok := err.(*Trap)
			if !ok {
				t.Fatalf("want *Trap, got %v", err)
			}
			if len(trap.Kind) < len(c.kind) || trap.Kind[:len(c.kind)] != c.kind {
				t.Errorf("trap kind %q, want prefix %q", trap.Kind, c.kind)
			}
		})
	}
}

func TestAllocAndMemory(t *testing.T) {
	b := &ir.Block{ID: 0, Instrs: []ir.Instr{
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(4)}, Imm: 8},
		{Op: ir.ALLOC, Defs: []ir.Reg{ir.GPR(5)}, Uses: []ir.Reg{ir.GPR(4)}},
		// store 99 at arr[2] (word offset 3), reload it.
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(6)}, Imm: 99},
		{Op: ir.ST, Uses: []ir.Reg{ir.GPR(6), ir.GPR(5)}, Imm: 3},
		{Op: ir.LD, Defs: []ir.Reg{ir.GPR(7)}, Uses: []ir.Reg{ir.GPR(5)}, Imm: 3},
		// length lives at word 0.
		{Op: ir.LD, Defs: []ir.Reg{ir.GPR(8)}, Uses: []ir.Reg{ir.GPR(5)}, Imm: 0},
		{Op: ir.ADD, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(7), ir.GPR(8)}},
		{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}},
	}}
	res, err := Run(buildProg([]*ir.Block{b}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 107 {
		t.Errorf("ret = %d, want 107 (99 + length 8)", res.Ret)
	}
}

func TestStepLimitEnforced(t *testing.T) {
	spin := &ir.Block{ID: 0, Instrs: []ir.Instr{
		{Op: ir.B, Target: 0},
	}, Succs: []int{0}}
	_, err := Run(buildProg([]*ir.Block{spin}), Config{StepLimit: 500})
	if err == nil {
		t.Fatal("want step-limit error")
	}
}

func TestTimedRequiresModel(t *testing.T) {
	b := &ir.Block{ID: 0, Instrs: []ir.Instr{{Op: ir.BLR}}}
	if _, err := Run(buildProg([]*ir.Block{b}), Config{Timed: true}); err == nil {
		t.Error("timed run without a model should fail")
	}
}

func TestTimedCyclesAtLeastIssueBound(t *testing.T) {
	// 20 serial adds cannot finish in fewer than 20 cycles.
	var ins []ir.Instr
	ins = append(ins, ir.Instr{Op: ir.LI, Defs: []ir.Reg{ir.GPR(3)}, Imm: 0})
	for i := 0; i < 20; i++ {
		ins = append(ins, ir.Instr{Op: ir.ADDI, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(3)}, Imm: 1})
	}
	ins = append(ins, ir.Instr{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}})
	b := &ir.Block{ID: 0, Instrs: ins}
	res, err := Run(buildProg([]*ir.Block{b}), Config{Timed: true, Model: machine.Default().Model})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 20 {
		t.Errorf("cycles = %d, want >= 20 for a serial chain", res.Cycles)
	}
	if res.Ret != 20 {
		t.Errorf("ret = %d, want 20", res.Ret)
	}
}

// TestSchedulingPreservesBlockSemantics is the reproduction's central
// safety property: executing a randomly generated block and its
// CPS-scheduled permutation from the same machine state must produce
// identical final states (registers and memory).
func TestSchedulingPreservesBlockSemantics(t *testing.T) {
	m := machine.Default().Model
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		blk := blockgen.GenBlock(r, blockgen.DefaultConfig, 0)

		st1 := NewState(64)
		st2 := st1.Clone()

		if err := ExecBlock(st1, blk); err != nil {
			return true // generated block traps identically either way
		}
		scheduled := blk.Clone()
		sched.ScheduleBlock(m, scheduled)
		if err := ExecBlock(st2, scheduled); err != nil {
			return false
		}
		return st1.Equal(st2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSchedulingPreservesSemanticsUnderRandomInitialState repeats the
// property from randomized starting registers and memory.
func TestSchedulingPreservesSemanticsUnderRandomInitialState(t *testing.T) {
	m := machine.Default().Model
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		blk := blockgen.GenBlock(r, blockgen.DefaultConfig, 0)

		st1 := NewState(64)
		for i := range st1.Regs {
			st1.Regs[i] = r.Int63n(1000)
		}
		for i := range st1.FRegs {
			st1.FRegs[i] = r.Float64() * 100
		}
		for i := range st1.Mem {
			st1.Mem[i] = uint64(r.Int63n(1 << 30))
		}
		st2 := st1.Clone()

		if err := ExecBlock(st1, blk); err != nil {
			return true
		}
		scheduled := blk.Clone()
		sched.ScheduleBlock(m, scheduled)
		if err := ExecBlock(st2, scheduled); err != nil {
			return false
		}
		return st1.Equal(st2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStateCloneIndependent(t *testing.T) {
	st := NewState(32)
	st.Regs[5] = 7
	st.Mem[10] = 11
	c := st.Clone()
	c.Regs[5] = 99
	c.Mem[10] = 99
	if st.Regs[5] != 7 || st.Mem[10] != 11 {
		t.Error("Clone shares storage")
	}
	if st.Equal(c) {
		t.Error("mutated clone should not equal original")
	}
}

func TestCallProtocolPreservesCallerRegisters(t *testing.T) {
	// Callee clobbers r20; the magic ABI must restore it for the caller.
	callee := &ir.Fn{Name: "clobber", Blocks: []*ir.Block{{ID: 0, Instrs: []ir.Instr{
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(20)}, Imm: 999},
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(3)}, Imm: 1},
		{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}},
	}}}}
	main := &ir.Fn{Name: "main", Blocks: []*ir.Block{{ID: 0, Instrs: []ir.Instr{
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(20)}, Imm: 41},
		{Op: ir.BL, Target: 1, Defs: []ir.Reg{ir.GPR(3)}},
		{Op: ir.ADD, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(20), ir.GPR(3)}},
		{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}},
	}}}}
	p := &ir.Program{Fns: []*ir.Fn{main, callee}, Entry: 0}
	res, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Errorf("ret = %d, want 42 (caller's r20 must survive the call)", res.Ret)
	}
}

func TestOutputFormatting(t *testing.T) {
	b := &ir.Block{ID: 0, Instrs: []ir.Instr{
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(4)}, Imm: 42},
		{Op: ir.RTPRINTI, Uses: []ir.Reg{ir.GPR(4)}},
		{Op: ir.LFI, Defs: []ir.Reg{ir.FPR(4)}, FImm: 1.5},
		{Op: ir.RTPRINTF, Uses: []ir.Reg{ir.FPR(4)}},
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(3)}, Imm: 0},
		{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}},
	}}
	res, err := Run(buildProg([]*ir.Block{b}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 2 || res.Output[0] != "i:42" || res.Output[1] != "f:1.5" {
		t.Errorf("output = %v", res.Output)
	}
}

func TestFloatReturnPreservesIntReturnRegister(t *testing.T) {
	// A float-returning callee must not clobber the caller's r3 (the
	// call protocol delivers exactly the declared return register).
	callee := &ir.Fn{Name: "fval", RetFloat: true, Blocks: []*ir.Block{{ID: 0, Instrs: []ir.Instr{
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(3)}, Imm: 999}, // scratch use of r3 inside callee
		{Op: ir.LFI, Defs: []ir.Reg{ir.FPR(1)}, FImm: 2.5},
		{Op: ir.BLR, Uses: []ir.Reg{ir.FPR(1)}},
	}}}}
	main := &ir.Fn{Name: "main", Blocks: []*ir.Block{{ID: 0, Instrs: []ir.Instr{
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(3)}, Imm: 40},
		{Op: ir.BL, Target: 1, Defs: []ir.Reg{ir.FPR(1)}},
		{Op: ir.F2I, Defs: []ir.Reg{ir.GPR(4)}, Uses: []ir.Reg{ir.FPR(1)}},
		{Op: ir.ADD, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(3), ir.GPR(4)}},
		{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}},
	}}}}
	p := &ir.Program{Fns: []*ir.Fn{main, callee}, Entry: 0}
	res, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Errorf("ret = %d, want 42 (r3 must survive a float-returning call)", res.Ret)
	}
}

func TestTakenCountsProfile(t *testing.T) {
	// Loop taken 9 times, falls through once.
	entry := &ir.Block{ID: 0, Instrs: []ir.Instr{
		{Op: ir.LI, Defs: []ir.Reg{ir.GPR(4)}, Imm: 10},
		{Op: ir.B, Target: 1},
	}, Succs: []int{1}}
	loop := &ir.Block{ID: 1, Instrs: []ir.Instr{
		{Op: ir.ADDI, Defs: []ir.Reg{ir.GPR(4)}, Uses: []ir.Reg{ir.GPR(4)}, Imm: -1},
		{Op: ir.CMPI, Defs: []ir.Reg{ir.CR(0)}, Uses: []ir.Reg{ir.GPR(4)}, Imm: 0},
		{Op: ir.BC, Uses: []ir.Reg{ir.CR(0)}, Imm: ir.CondGT, Target: 1},
	}, Succs: []int{1, 2}}
	exit := &ir.Block{ID: 2, Instrs: []ir.Instr{
		{Op: ir.MR, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(4)}},
		{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}},
	}}
	res, err := Run(buildProg([]*ir.Block{entry, loop, exit}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecCounts[0][1] != 10 {
		t.Errorf("loop executed %d times, want 10", res.ExecCounts[0][1])
	}
	if res.TakenCounts[0][1] != 9 {
		t.Errorf("loop branch taken %d times, want 9", res.TakenCounts[0][1])
	}
	if res.TakenCounts[0][0] != 0 {
		t.Errorf("unconditional B counted as taken BC: %d", res.TakenCounts[0][0])
	}
}
