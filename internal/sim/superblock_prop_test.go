package sim

import (
	"math/rand"
	"testing"

	"schedfilter/internal/blockgen"
	"schedfilter/internal/ir"
	"schedfilter/internal/machine"
	"schedfilter/internal/sched"
)

// genCFGFn builds a random single-function program with DAG-shaped control
// flow (all branch targets strictly forward, so every run terminates):
// each block gets a random straight-line body from blockgen, then a
// terminator — BC to a random later block with fall-through to the next,
// or B to a random later block. The last block moves a value to r3 and
// returns. Executing it from a zeroed machine is deterministic, so it
// serves as its own oracle across scheduling transformations.
func genCFGFn(r *rand.Rand, nBlocks int) *ir.Program {
	cfg := blockgen.DefaultConfig
	cfg.WithBranch = false
	cfg.MinLen = 2
	cfg.MaxLen = 14

	fn := &ir.Fn{Name: "main"}
	for bi := 0; bi < nBlocks; bi++ {
		b := &ir.Block{ID: bi, Instrs: blockgen.Gen(r, cfg)}
		if bi == nBlocks-1 {
			b.Instrs = append(b.Instrs,
				ir.Instr{Op: ir.MR, Defs: []ir.Reg{ir.GPR(3)}, Uses: []ir.Reg{ir.GPR(16)}},
				ir.Instr{Op: ir.BLR, Uses: []ir.Reg{ir.GPR(3)}},
			)
		} else {
			// Random forward target strictly beyond the fall-through.
			target := bi + 1
			if bi+2 < nBlocks {
				target = bi + 2 + r.Intn(nBlocks-bi-2)
			}
			if r.Intn(3) == 0 {
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.B, Target: target})
				b.Succs = []int{target}
			} else {
				cr := ir.CR(r.Intn(4))
				b.Instrs = append(b.Instrs,
					ir.Instr{Op: ir.CMPI, Defs: []ir.Reg{cr}, Uses: []ir.Reg{ir.GPR(16 + int(r.Intn(8)))}, Imm: int64(r.Intn(40))},
					ir.Instr{Op: ir.BC, Uses: []ir.Reg{cr}, Imm: int64(r.Intn(6)), Target: target},
				)
				b.Succs = []int{target, bi + 1}
			}
		}
		fn.Blocks = append(fn.Blocks, b)
	}
	return &ir.Program{Fns: []*ir.Fn{fn}}
}

// fingerprint reduces a run to a comparable value.
func fingerprint(t *testing.T, p *ir.Program) (int64, int64) {
	t.Helper()
	res, err := Run(p, Config{MemWords: 4096, StepLimit: 1 << 20})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return res.Ret, res.DynInstrs
}

// TestSuperblockSchedulingPreservesCFGSemantics: for random DAG CFGs and
// arbitrary (even deliberately wrong) profiles, profile-guided superblock
// scheduling must preserve the program's result. Correctness may not
// depend on profile accuracy — only performance may.
func TestSuperblockSchedulingPreservesCFGSemantics(t *testing.T) {
	m := machine.Default().Model
	for trial := 0; trial < 120; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		p := genCFGFn(r, 4+r.Intn(6))
		wantRet, _ := fingerprint(t, p)

		// A random profile, unrelated to real execution.
		fn := p.Fns[0]
		prof := make([]sched.BlockProfile, len(fn.Blocks))
		for i := range prof {
			prof[i].Exec = int64(r.Intn(1000))
			prof[i].Taken = int64(r.Intn(int(prof[i].Exec + 1)))
		}
		sched.ScheduleSuperblocks(m, fn, prof, sched.DefaultSuperblockOptions())

		gotRet, _ := fingerprint(t, p)
		if gotRet != wantRet {
			t.Fatalf("trial %d: superblock scheduling changed the result: %d -> %d\n%s",
				trial, wantRet, gotRet, fn)
		}
		// Structural sanity after the transformation.
		for bi, b := range fn.Blocks {
			if b.ID != bi {
				t.Fatalf("trial %d: block id %d at index %d", trial, b.ID, bi)
			}
			if len(b.Instrs) == 0 {
				t.Fatalf("trial %d: empty block %d", trial, bi)
			}
		}
	}
}

// TestSuperblockSchedulingWithTruthfulProfile repeats the property with
// the real profile from a functional run (the production configuration).
func TestSuperblockSchedulingWithTruthfulProfile(t *testing.T) {
	m := machine.Default().Model
	for trial := 0; trial < 60; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		p := genCFGFn(r, 5+r.Intn(5))
		res, err := Run(p, Config{MemWords: 4096, StepLimit: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		fn := p.Fns[0]
		prof := make([]sched.BlockProfile, len(fn.Blocks))
		for i := range prof {
			prof[i].Exec = res.ExecCounts[0][i]
			prof[i].Taken = res.TakenCounts[0][i]
		}
		sched.ScheduleSuperblocks(m, fn, prof, sched.DefaultSuperblockOptions())
		got, err := Run(p, Config{MemWords: 4096, StepLimit: 1 << 20})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Ret != res.Ret {
			t.Fatalf("trial %d: result changed %d -> %d", trial, res.Ret, got.Ret)
		}
	}
}
