package training

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"schedfilter/internal/features"
)

// CSV export/import of raw training instances, so the labelled data can be
// inspected or fed to external learners (the paper's workflow kept the
// trace files around for exactly this kind of offline analysis).
//
// Columns: bench, fn, block, the 13 features, costNS, costLS, execs.

// csvHeader returns the fixed column header.
func csvHeader() string {
	cols := []string{"bench", "fn", "block"}
	cols = append(cols, features.Names[:]...)
	cols = append(cols, "costNS", "costLS", "execs")
	return strings.Join(cols, ",")
}

// WriteCSV writes all benchmarks' records.
func WriteCSV(w io.Writer, data []*BenchData) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, csvHeader()); err != nil {
		return err
	}
	for _, bd := range data {
		for i := range bd.Records {
			r := &bd.Records[i]
			fields := make([]string, 0, 3+features.Count+3)
			fields = append(fields, bd.Name, r.Fn, strconv.Itoa(r.Block))
			for _, v := range r.Feat {
				fields = append(fields, strconv.FormatFloat(v, 'g', -1, 64))
			}
			fields = append(fields,
				strconv.Itoa(r.CostNS),
				strconv.Itoa(r.CostLS),
				strconv.FormatInt(r.Execs, 10))
			if _, err := fmt.Fprintln(bw, strings.Join(fields, ",")); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses instances written by WriteCSV, grouping them back into
// per-benchmark BenchData (without compiled programs — CSV round-trips
// records only).
func ReadCSV(r io.Reader) ([]*BenchData, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("training: empty CSV")
	}
	if got := strings.TrimSpace(sc.Text()); got != csvHeader() {
		return nil, fmt.Errorf("training: unexpected CSV header %q", got)
	}
	wantFields := 3 + features.Count + 3

	byName := map[string]*BenchData{}
	var order []*BenchData
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != wantFields {
			return nil, fmt.Errorf("training: line %d: %d fields, want %d", line, len(fields), wantFields)
		}
		var rec BlockRecord
		bench := fields[0]
		rec.Fn = fields[1]
		var err error
		if rec.Block, err = strconv.Atoi(fields[2]); err != nil {
			return nil, fmt.Errorf("training: line %d: bad block %q", line, fields[2])
		}
		for i := 0; i < features.Count; i++ {
			v, err := strconv.ParseFloat(fields[3+i], 64)
			if err != nil {
				return nil, fmt.Errorf("training: line %d: bad feature %q", line, fields[3+i])
			}
			rec.Feat[i] = v
		}
		if rec.CostNS, err = strconv.Atoi(fields[3+features.Count]); err != nil {
			return nil, fmt.Errorf("training: line %d: bad costNS", line)
		}
		if rec.CostLS, err = strconv.Atoi(fields[4+features.Count]); err != nil {
			return nil, fmt.Errorf("training: line %d: bad costLS", line)
		}
		if rec.Execs, err = strconv.ParseInt(fields[5+features.Count], 10, 64); err != nil {
			return nil, fmt.Errorf("training: line %d: bad execs", line)
		}
		bd, ok := byName[bench]
		if !ok {
			bd = &BenchData{Name: bench}
			byName[bench] = bd
			order = append(order, bd)
		}
		bd.Records = append(bd.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return order, nil
}
