package training

import (
	"fmt"

	"schedfilter/internal/core"
	"schedfilter/internal/features"
	"schedfilter/internal/jit"
	"schedfilter/internal/machine"
	"schedfilter/internal/policy"
	"schedfilter/internal/ripper"
	"schedfilter/internal/sched"
	"schedfilter/internal/sim"
	"schedfilter/internal/workloads"
)

// The paper (§3.1): "We could apply our same procedure to the superblock
// case, and it might provide additional evidence that we can induce
// heuristics that greatly reduce scheduling effort while preserving most
// of the benefit." This file does exactly that: the decision unit becomes
// a whole superblock trace, the features are the same cheap single-pass
// vector computed over the concatenated trace, and the labels compare the
// estimator's cost of the locally scheduled trace against the
// superblock-scheduled trace.

// TraceRecord is one superblock-level training instance.
type TraceRecord struct {
	Fn string
	// Blocks are the trace's block IDs (post tail-duplication).
	Blocks []int
	// Feat is the Table-1 vector over the concatenated trace.
	Feat features.Vector
	// CostLocal is the estimator makespan summed over the locally
	// list-scheduled blocks; CostSuper is the makespan of the trace
	// scheduled as one superblock.
	CostLocal int
	CostSuper int
	// Execs is the trace head's execution count.
	Execs int64
}

// TraceData is one benchmark's superblock instances.
type TraceData struct {
	Name    string
	Records []TraceRecord
}

// CollectSuperblockData compiles the workload, forms superblock traces
// from a profiling run, and produces one instance per trace.
func CollectSuperblockData(w *workloads.Workload, m *machine.Model, opts Options) (*TraceData, error) {
	mod, err := w.CompileWithOptions(opts.Frontend)
	if err != nil {
		return nil, err
	}
	prog, err := jit.Compile(mod, opts.JIT)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	profRun, err := sim.Run(prog, sim.Config{})
	if err != nil {
		return nil, fmt.Errorf("%s: profiling run: %w", w.Name, err)
	}

	td := &TraceData{Name: w.Name}
	sbOpt := sched.DefaultSuperblockOptions()
	for fi, fn := range prog.Fns {
		prof := make([]sched.BlockProfile, len(fn.Blocks))
		for bi := range prof {
			prof[bi] = sched.BlockProfile{
				Exec:  profRun.ExecCounts[fi][bi],
				Taken: profRun.TakenCounts[fi][bi],
			}
		}
		traces := sched.FormTraces(fn, prof, sbOpt)
		for _, tr := range traces {
			sched.TailDuplicate(fn, tr)
		}
		liveIn, _ := sched.Liveness(fn)
		for _, tr := range traces {
			rec := sched.MeasureTrace(m, fn, tr, liveIn)
			td.Records = append(td.Records, TraceRecord{
				Fn:        fn.Name,
				Blocks:    tr,
				Feat:      rec.Feat,
				CostLocal: rec.CostLocal,
				CostSuper: rec.CostSuper,
				Execs:     prof[tr[0]].Exec,
			})
		}
	}
	return td, nil
}

// TraceLabelOf labels a trace at threshold t: +1 if superblock scheduling
// beats local scheduling by more than t%, -1 if it is no better, 0 if
// dropped.
func TraceLabelOf(r *TraceRecord, t int) int {
	if r.CostSuper >= r.CostLocal {
		return -1
	}
	if 100*r.CostSuper < r.CostLocal*(100-t) {
		return +1
	}
	return 0
}

// LabelTraces builds a Ripper dataset from trace records.
func LabelTraces(recs []TraceRecord, t int) *ripper.Dataset {
	ds := &ripper.Dataset{Names: features.Names[:]}
	for i := range recs {
		switch TraceLabelOf(&recs[i], t) {
		case +1:
			ds.Add(recs[i].Feat.Slice(), true)
		case -1:
			ds.Add(recs[i].Feat.Slice(), false)
		}
	}
	return ds
}

// TrainTraceFilter induces a superblock filter from the union of
// benchmarks' trace instances at threshold t.
func TrainTraceFilter(data []*TraceData, t int, opt ripper.Options) *core.Induced {
	ds := &ripper.Dataset{Names: features.Names[:]}
	for _, td := range data {
		part := LabelTraces(td.Records, t)
		for i := range part.X {
			ds.Add(part.X[i], part.Y[i])
		}
	}
	rs := ripper.Induce(ds, opt)
	return core.NewInduced(rs, fmt.Sprintf("SB/L t=%d", t))
}

// TraceLeaveOneOut trains a superblock filter for the named benchmark on
// the other benchmarks' traces.
func TraceLeaveOneOut(all []*TraceData, target string, t int, opt ripper.Options) *core.Induced {
	var rest []*TraceData
	for _, td := range all {
		if td.Name != target {
			rest = append(rest, td)
		}
	}
	f := TrainTraceFilter(rest, t, opt)
	f.Label = fmt.Sprintf("SB/L t=%d (loo %s)", t, target)
	return f
}

// TraceErrorRate is the classification error of a filter on the target's
// labelled traces at threshold t.
func TraceErrorRate(f core.Filter, td *TraceData, t int) float64 {
	total, wrong := 0, 0
	for i := range td.Records {
		lbl := TraceLabelOf(&td.Records[i], t)
		if lbl == 0 {
			continue
		}
		total++
		if policy.Schedules(f, td.Records[i].Feat) != (lbl == +1) {
			wrong++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}
