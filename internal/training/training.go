// Package training implements the paper's learning methodology: as the
// JIT compiles each benchmark, every basic block yields a raw instance —
// its cheap static features plus the simplified simulator's cost estimate
// for the original order and for the list-scheduled order. Threshold
// labelling turns raw instances into a Ripper training set (LS if
// scheduling improved the estimate by more than t%, NS if it did not help
// at all, dropped otherwise), and leave-one-out cross-validation trains a
// filter for each benchmark on the other benchmarks' instances.
package training

import (
	"fmt"
	"sync"

	"schedfilter/internal/core"
	"schedfilter/internal/features"
	"schedfilter/internal/ir"
	"schedfilter/internal/jit"
	"schedfilter/internal/jolt"
	"schedfilter/internal/machine"
	"schedfilter/internal/par"
	"schedfilter/internal/policy"
	"schedfilter/internal/ripper"
	"schedfilter/internal/sched"
	"schedfilter/internal/sim"
	"schedfilter/internal/workloads"
)

// BlockRecord is one raw training instance: a block's features, its
// estimator costs under both orders, and its profiled execution count.
type BlockRecord struct {
	Fn     string
	Block  int
	Feat   features.Vector
	CostNS int
	CostLS int
	Execs  int64
}

// BenchData is everything the evaluation needs about one benchmark.
type BenchData struct {
	Name  string
	Suite workloads.Suite
	// Target names the machine target whose cost model produced the
	// records' estimates (machine.TargetNameFor of the collection model).
	Target  string
	Records []BlockRecord
	// Prog is the compiled (unscheduled) program; protocols clone it.
	Prog *ir.Program
}

// Options bundle the compilation configuration the training pipeline (and
// evaluation) uses for every benchmark.
type Options struct {
	// JIT configures inlining and code generation.
	JIT jit.Options
	// Frontend configures Jolt front-end passes (loop unrolling).
	Frontend jolt.Options
}

// DefaultOptions mirror the paper's aggressive OptOpt configuration:
// inlining (callee <= 30, depth <= 6, expansion <= 7x) plus 4-way loop
// unrolling, which gives the block population enough large schedulable
// blocks for the threshold sweep to have paper-like resolution.
func DefaultOptions() Options {
	return Options{
		JIT:      jit.DefaultOptions(),
		Frontend: jolt.Options{UnrollFactor: 4},
	}
}

// Collect compiles the workload, runs the scheduler experimentally over a
// copy of every block to obtain both cost estimates, and profiles block
// execution counts with one functional run.
func Collect(w *workloads.Workload, m *machine.Model, opts Options) (*BenchData, error) {
	mod, err := w.CompileWithOptions(opts.Frontend)
	if err != nil {
		return nil, err
	}
	prog, err := jit.Compile(mod, opts.JIT)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	res, err := sim.Run(prog, sim.Config{})
	if err != nil {
		return nil, fmt.Errorf("%s: profiling run: %w", w.Name, err)
	}

	bd := &BenchData{Name: w.Name, Suite: w.Suite, Target: machine.TargetNameFor(m), Prog: prog}
	s := sched.GetScratch()
	for fi, fn := range prog.Fns {
		for bi, b := range fn.Blocks {
			r := sched.ScheduleInstrsScratch(m, b.Instrs, s)
			bd.Records = append(bd.Records, BlockRecord{
				Fn:     fn.Name,
				Block:  bi,
				Feat:   features.ExtractBlock(b),
				CostNS: r.CostBefore,
				CostLS: r.CostAfter,
				Execs:  res.ExecCounts[fi][bi],
			})
		}
	}
	sched.PutScratch(s)
	return bd, nil
}

// CollectAll gathers BenchData for a set of workloads, fanning the
// collection across runtime.GOMAXPROCS(0) workers. Results are in workload
// order regardless of worker count.
func CollectAll(ws []workloads.Workload, m *machine.Model, opts Options) ([]*BenchData, error) {
	return CollectAllJobs(ws, m, opts, 0)
}

// CollectAllJobs is CollectAll with an explicit worker count (<= 0 selects
// runtime.GOMAXPROCS(0), 1 forces the serial path). Each workload compiles
// and profiles independently, so the fan-out shares nothing but the machine
// model, which is read-only; the assembled slice — and any error, which is
// always the lowest-indexed workload's — is identical at every job count.
func CollectAllJobs(ws []workloads.Workload, m *machine.Model, opts Options, jobs int) ([]*BenchData, error) {
	out := make([]*BenchData, len(ws))
	err := par.DoErr(jobs, len(ws), func(i int) error {
		bd, err := Collect(&ws[i], m, opts)
		if err != nil {
			return err
		}
		out[i] = bd
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LabelOf classifies one record at threshold t (percent): +1 for LS, -1
// for NS, 0 for dropped (improvement in (0, t%]).
func LabelOf(r *BlockRecord, t int) int {
	if r.CostLS >= r.CostNS {
		return -1
	}
	// Improvement strictly greater than t percent:
	// costLS < costNS * (1 - t/100)  ⇔  100*costLS < costNS*(100-t).
	if 100*r.CostLS < r.CostNS*(100-t) {
		return +1
	}
	return 0
}

// Label builds a Ripper dataset from records at threshold t.
func Label(recs []BlockRecord, t int) *ripper.Dataset {
	ds := &ripper.Dataset{Names: features.Names[:]}
	for i := range recs {
		switch LabelOf(&recs[i], t) {
		case +1:
			ds.Add(recs[i].Feat.Slice(), true)
		case -1:
			ds.Add(recs[i].Feat.Slice(), false)
		}
	}
	return ds
}

// LabelCounts returns the LS and NS instance counts at threshold t.
func LabelCounts(recs []BlockRecord, t int) (ls, ns int) {
	for i := range recs {
		switch LabelOf(&recs[i], t) {
		case +1:
			ls++
		case -1:
			ns++
		}
	}
	return
}

// LabelCache memoizes labelled per-benchmark datasets by (benchmark,
// threshold), so a leave-one-out sweep over B benchmarks and T thresholds
// labels each benchmark T times instead of B·T times. Cached datasets are
// immutable once built (Induce only reads them, and merging shares rows via
// Dataset.Append rather than copying), so one cache may serve concurrent
// trainers. The zero value is ready to use.
type LabelCache struct {
	mu sync.Mutex
	m  map[labelKey]*ripper.Dataset
}

type labelKey struct {
	bd *BenchData
	t  int
}

// Labelled returns bd's instances labelled at threshold t, building and
// memoizing the dataset on first use. The returned dataset is shared:
// callers must not mutate it.
func (c *LabelCache) Labelled(bd *BenchData, t int) *ripper.Dataset {
	c.mu.Lock()
	ds, ok := c.m[labelKey{bd, t}]
	c.mu.Unlock()
	if ok {
		return ds
	}
	// Label outside the lock — it is pure, and two racing builders produce
	// identical datasets, so last-write-wins is harmless.
	ds = Label(bd.Records, t)
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[labelKey]*ripper.Dataset)
	}
	if have, ok := c.m[labelKey{bd, t}]; ok {
		ds = have
	} else {
		c.m[labelKey{bd, t}] = ds
	}
	c.mu.Unlock()
	return ds
}

// TrainFilter induces a filter from the union of the given benchmarks'
// instances at threshold t.
func TrainFilter(data []*BenchData, t int, opt ripper.Options) *core.Induced {
	return TrainFilterCached(data, t, opt, nil)
}

// TrainFilterCached is TrainFilter drawing labelled datasets from c (nil
// means label from scratch). Per-benchmark datasets are merged with one
// pre-sized bulk append per benchmark instead of an instance-at-a-time
// copy of the already-built parts.
func TrainFilterCached(data []*BenchData, t int, opt ripper.Options, c *LabelCache) *core.Induced {
	ds := &ripper.Dataset{Names: features.Names[:]}
	for _, bd := range data {
		if c != nil {
			ds.Append(c.Labelled(bd, t))
		} else {
			ds.Append(Label(bd.Records, t))
		}
	}
	rs := ripper.Induce(ds, opt)
	return core.NewInducedFor(rs, fmt.Sprintf("L/N t=%d", t), targetOf(data))
}

// targetOf is the common machine target of the training data: the
// benchmarks' shared target name, or "" when the set is empty or mixed
// (a mixed set has no single provenance worth recording).
func targetOf(data []*BenchData) string {
	target := ""
	for i, bd := range data {
		if i == 0 {
			target = bd.Target
		} else if bd.Target != target {
			return ""
		}
	}
	return target
}

// LeaveOneOut trains a filter for the named benchmark using every OTHER
// benchmark's instances, as the paper's cross-validation does.
func LeaveOneOut(all []*BenchData, target string, t int, opt ripper.Options) *core.Induced {
	return LeaveOneOutCached(all, target, t, opt, nil)
}

// LeaveOneOutCached is LeaveOneOut drawing labelled datasets from c (nil
// means label from scratch).
func LeaveOneOutCached(all []*BenchData, target string, t int, opt ripper.Options, c *LabelCache) *core.Induced {
	rest := make([]*BenchData, 0, len(all))
	for _, bd := range all {
		if bd.Name != target {
			rest = append(rest, bd)
		}
	}
	f := TrainFilterCached(rest, t, opt, c)
	f.Label = fmt.Sprintf("L/N t=%d (loo %s)", t, target)
	return f
}

// ErrorRate evaluates a filter's classification error on the target
// benchmark's labelled instances at threshold t (dropped instances are
// excluded, as in the paper's test sets).
func ErrorRate(f core.Filter, bd *BenchData, t int) float64 {
	total, wrong := 0, 0
	for i := range bd.Records {
		lbl := LabelOf(&bd.Records[i], t)
		if lbl == 0 {
			continue
		}
		total++
		pred := policy.Schedules(f, bd.Records[i].Feat)
		if pred != (lbl == +1) {
			wrong++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}

// PredictedTime computes the paper's simulated running time:
// SIM(P, π) = Σ_b execs(b) · estcost_π(b), with the filter choosing per
// block between the scheduled and unscheduled cost estimate.
func PredictedTime(bd *BenchData, f core.Filter) int64 {
	var total int64
	for i := range bd.Records {
		r := &bd.Records[i]
		c := r.CostNS
		if policy.Schedules(f, r.Feat) {
			c = r.CostLS
		}
		total += r.Execs * int64(c)
	}
	return total
}

// Decisions counts how many blocks the filter sends to the scheduler
// (run-time LS classifications) versus not.
func Decisions(bd *BenchData, f core.Filter) (ls, ns int) {
	for i := range bd.Records {
		if policy.Schedules(f, bd.Records[i].Feat) {
			ls++
		} else {
			ns++
		}
	}
	return
}
