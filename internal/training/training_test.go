package training

import (
	"bytes"
	"strings"
	"testing"

	"schedfilter/internal/core"
	"schedfilter/internal/features"
	"schedfilter/internal/machine"
	"schedfilter/internal/ripper"
	"schedfilter/internal/workloads"
)

func collectSuite1(t *testing.T) []*BenchData {
	t.Helper()
	m := machine.Default().Model
	data, err := CollectAll(workloads.Suite1(), m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestLabelOfThresholds(t *testing.T) {
	r := BlockRecord{CostNS: 100, CostLS: 80} // 20% improvement
	cases := []struct {
		t    int
		want int
	}{
		{0, +1}, {10, +1}, {19, +1}, {20, 0}, {25, 0}, {50, 0},
	}
	for _, c := range cases {
		if got := LabelOf(&r, c.t); got != c.want {
			t.Errorf("LabelOf(20%% improvement, t=%d) = %d, want %d", c.t, got, c.want)
		}
	}
	same := BlockRecord{CostNS: 100, CostLS: 100}
	if LabelOf(&same, 0) != -1 {
		t.Error("no improvement must label NS")
	}
	worse := BlockRecord{CostNS: 100, CostLS: 120}
	if LabelOf(&worse, 0) != -1 {
		t.Error("degradation must label NS")
	}
}

func TestLabelCountsMonotone(t *testing.T) {
	data := collectSuite1(t)
	var all []BlockRecord
	for _, bd := range data {
		all = append(all, bd.Records...)
	}
	prevLS := 1 << 30
	for _, th := range []int{0, 10, 20, 30, 40, 50} {
		ls, ns := LabelCounts(all, th)
		if ls > prevLS {
			t.Errorf("LS count rose from %d to %d at t=%d", prevLS, ls, th)
		}
		prevLS = ls
		// NS is constant across thresholds (the paper's Table 5 note).
		ls0, ns0 := LabelCounts(all, 0)
		if ns != ns0 {
			t.Errorf("NS count %d at t=%d differs from %d at t=0", ns, th, ns0)
		}
		_ = ls0
	}
}

func TestCollectProducesPlausibleInstances(t *testing.T) {
	data := collectSuite1(t)
	totalBlocks := 0
	improved := 0
	for _, bd := range data {
		if len(bd.Records) < 30 {
			t.Errorf("%s: only %d blocks", bd.Name, len(bd.Records))
		}
		totalBlocks += len(bd.Records)
		for i := range bd.Records {
			r := &bd.Records[i]
			if r.CostNS <= 0 && r.Feat.BBLen() > 0 {
				t.Errorf("%s %s b%d: nonpositive cost %d", bd.Name, r.Fn, r.Block, r.CostNS)
			}
			if r.CostLS < r.CostNS {
				improved++
			}
		}
	}
	t.Logf("suite1: %d blocks, %d improved by scheduling (%.1f%%)",
		totalBlocks, improved, 100*float64(improved)/float64(totalBlocks))
	if improved == 0 {
		t.Error("scheduling improved nothing; training is impossible")
	}
	if improved > totalBlocks/2 {
		t.Error("scheduling improved most blocks; filtering would be pointless")
	}
}

func TestLeaveOneOutAccuracy(t *testing.T) {
	data := collectSuite1(t)
	opt := ripper.DefaultOptions()
	for _, bd := range data {
		f := LeaveOneOut(data, bd.Name, 0, opt)
		e := ErrorRate(f, bd, 0)
		t.Logf("%s: t=0 error %.2f%%, rules=%d", bd.Name, e*100, len(f.Rules.Rules))
		if e > 0.45 {
			t.Errorf("%s: error rate %.1f%% is no better than chance-ish", bd.Name, e*100)
		}
	}
}

func TestPredictedTimeOrdering(t *testing.T) {
	data := collectSuite1(t)
	for _, bd := range data {
		ls := PredictedTime(bd, core.Always{})
		ns := PredictedTime(bd, core.Never{})
		if ls > ns {
			t.Errorf("%s: predicted LS time %d exceeds NS time %d", bd.Name, ls, ns)
		}
		f := LeaveOneOut(data, bd.Name, 0, ripper.DefaultOptions())
		fl := PredictedTime(bd, f)
		if fl > ns {
			t.Errorf("%s: filtered predicted time %d exceeds NS %d", bd.Name, fl, ns)
		}
		if fl < ls {
			t.Errorf("%s: filtered predicted time %d beats always-scheduling %d (impossible under the estimator)", bd.Name, fl, ls)
		}
	}
}

func TestDecisionsPartition(t *testing.T) {
	data := collectSuite1(t)
	bd := data[0]
	f := LeaveOneOut(data, bd.Name, 20, ripper.DefaultOptions())
	ls, ns := Decisions(bd, f)
	if ls+ns != len(bd.Records) {
		t.Errorf("decisions %d+%d != %d blocks", ls, ns, len(bd.Records))
	}
}

func TestCollectAllJobsMatchesSerial(t *testing.T) {
	m := machine.Default().Model
	ws := workloads.Suite1()
	serial, err := CollectAllJobs(ws, m, DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CollectAllJobs(ws, m, DefaultOptions(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("parallel collected %d benchmarks, serial %d", len(parallel), len(serial))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Name != b.Name || len(a.Records) != len(b.Records) {
			t.Fatalf("benchmark %d: %s/%d records vs %s/%d", i,
				a.Name, len(a.Records), b.Name, len(b.Records))
		}
		for j := range a.Records {
			if a.Records[j] != b.Records[j] {
				t.Fatalf("%s record %d differs between serial and parallel collection:\n%+v\n%+v",
					a.Name, j, a.Records[j], b.Records[j])
			}
		}
	}
}

func TestLabelCacheAndCachedTraining(t *testing.T) {
	data := collectSuite1(t)
	var c LabelCache

	// Cached datasets are memoized and identical to fresh labelling.
	for _, bd := range data {
		for _, th := range []int{0, 25} {
			ds := c.Labelled(bd, th)
			if ds != c.Labelled(bd, th) {
				t.Fatalf("%s t=%d: cache returned a different dataset on the second lookup", bd.Name, th)
			}
			fresh := Label(bd.Records, th)
			if ds.Len() != fresh.Len() {
				t.Fatalf("%s t=%d: cached %d instances, fresh %d", bd.Name, th, ds.Len(), fresh.Len())
			}
		}
	}

	// Training through the cache induces the exact same rule sets.
	opt := ripper.DefaultOptions()
	for _, th := range []int{0, 25} {
		plain := TrainFilter(data, th, opt)
		cached := TrainFilterCached(data, th, opt, &c)
		if plain.Rules.String() != cached.Rules.String() {
			t.Errorf("t=%d: cached training diverged:\n%s\nvs\n%s",
				th, plain.Rules, cached.Rules)
		}
		looPlain := LeaveOneOut(data, data[0].Name, th, opt)
		looCached := LeaveOneOutCached(data, data[0].Name, th, opt, &c)
		if looPlain.Rules.String() != looCached.Rules.String() {
			t.Errorf("t=%d: cached leave-one-out diverged", th)
		}
		if looPlain.Label != looCached.Label {
			t.Errorf("t=%d: labels differ: %q vs %q", th, looPlain.Label, looCached.Label)
		}
	}
}

func TestTrainFilterUsesFeatureNames(t *testing.T) {
	data := collectSuite1(t)
	f := TrainFilter(data, 0, ripper.DefaultOptions())
	if len(f.Rules.Names) != features.Count {
		t.Errorf("rule set has %d attribute names, want %d", len(f.Rules.Names), features.Count)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	data := collectSuite1(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, data[:2]); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(back))
	}
	for i, bd := range back {
		if bd.Name != data[i].Name {
			t.Errorf("benchmark %d name %q, want %q", i, bd.Name, data[i].Name)
		}
		if len(bd.Records) != len(data[i].Records) {
			t.Fatalf("%s: %d records, want %d", bd.Name, len(bd.Records), len(data[i].Records))
		}
		for j := range bd.Records {
			a, b := &bd.Records[j], &data[i].Records[j]
			if a.Feat != b.Feat || a.CostNS != b.CostNS || a.CostLS != b.CostLS || a.Execs != b.Execs {
				t.Fatalf("%s record %d drifted through CSV: %+v vs %+v", bd.Name, j, a, b)
			}
		}
	}
	// Training on round-tripped data must behave identically.
	f1 := TrainFilter(data[:2], 0, ripper.DefaultOptions())
	f2 := TrainFilter(back, 0, ripper.DefaultOptions())
	if f1.Rules.String() != f2.Rules.String() {
		t.Error("rule sets differ after CSV round trip")
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"wrong,header\n",
		csvHeader() + "\nonly,three,fields\n",
		csvHeader() + "\nb,f,notanumber" + strings.Repeat(",0", 16) + "\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: ReadCSV accepted garbage", i)
		}
	}
}

// BenchmarkCollect measures one benchmark's full data collection:
// compile, profile, and schedule every block experimentally on the pooled
// scheduler path.
func BenchmarkCollect(b *testing.B) {
	m := machine.Default().Model
	w := workloads.ByName("compress")
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(w, m, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectAllParallel measures suite-1 collection fanned across
// GOMAXPROCS workers (the CollectAll default).
func BenchmarkCollectAllParallel(b *testing.B) {
	m := machine.Default().Model
	ws := workloads.Suite1()
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CollectAllJobs(ws, m, opts, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCollectSuperblockData(t *testing.T) {
	m := machine.Default().Model
	w := workloads.ByName("scimark")
	td, err := CollectSuperblockData(w, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Records) == 0 {
		t.Fatal("no traces collected")
	}
	pos := 0
	for i := range td.Records {
		r := &td.Records[i]
		if len(r.Blocks) < 2 {
			t.Errorf("trace %d has %d blocks, want >= 2", i, len(r.Blocks))
		}
		if r.CostLocal <= 0 || r.CostSuper <= 0 {
			t.Errorf("trace %d: nonpositive costs %d/%d", i, r.CostLocal, r.CostSuper)
		}
		if r.CostSuper > r.CostLocal {
			t.Errorf("trace %d: superblock scheduling raised the estimator cost %d -> %d",
				i, r.CostLocal, r.CostSuper)
		}
		if TraceLabelOf(r, 0) == +1 {
			pos++
		}
	}
	t.Logf("scimark: %d traces, %d beneficial", len(td.Records), pos)
	if pos == 0 {
		t.Error("no beneficial traces on an FP kernel suite member")
	}
}

func TestTraceLabelThresholds(t *testing.T) {
	r := TraceRecord{CostLocal: 100, CostSuper: 90}
	if TraceLabelOf(&r, 0) != +1 || TraceLabelOf(&r, 10) != 0 {
		t.Error("trace labelling thresholds wrong")
	}
	same := TraceRecord{CostLocal: 50, CostSuper: 50}
	if TraceLabelOf(&same, 0) != -1 {
		t.Error("no-benefit trace must label negative")
	}
}
