package workloads

// Suite 1: SPECjvm98 stand-ins. Each body is appended to the shared
// prelude. The programs are deterministic (fixed LCG seed) and return a
// checksum, so interpreter, compiled code, and every scheduling protocol
// can be compared exactly.

// srcCompress: LZW compression with a hash-probed dictionary over
// synthetic compressible text — integer, branch, and table-lookup heavy
// like 129.compress.
const srcCompress = `
var outSum int = 0;
var outCount int = 0;

func emit(code int) {
  outCount = outCount + 1;
  outSum = (outSum * 31 + code) & 16777215;
}

func main() int {
  wlSrand(20040613);
  var n int = 4000;
  var input int[] = new int[n];
  var x int = 65;
  for (var i int = 0; i < n; i = i + 1) {
    var r int = wlRandN(100);
    if (r >= 55) { x = 65 + wlRandN(26); }
    if (r >= 90) { x = 32; }
    input[i] = x;
  }

  var tabSize int = 4096;
  var mask int = 4095;
  var prefix int[] = new int[tabSize];
  var suffix int[] = new int[tabSize];
  var code int[] = new int[tabSize];
  var nextCode int = 256;

  var w int = input[0];
  for (var i int = 1; i < n; i = i + 1) {
    var c int = input[i];
    var h int = ((w * 31 + c) * 7) & mask;
    var found int = -1;
    var probes int = 0;
    while (probes < tabSize) {
      if (code[h] == 0) { break; }
      if (prefix[h] == w && suffix[h] == c) { found = code[h]; break; }
      h = (h + 1) & mask;
      probes = probes + 1;
    }
    if (found >= 0) {
      w = found;
    } else {
      emit(w);
      if (nextCode < tabSize - 1 && code[h] == 0) {
        prefix[h] = w;
        suffix[h] = c;
        code[h] = nextCode;
        nextCode = nextCode + 1;
      }
      w = c;
    }
  }
  emit(w);
  return outSum + outCount * 1000000 + nextCode;
}
`

// srcJess: forward-chaining production system — repeated rule scans over a
// boolean fact base, firing consequents until fixpoint, like the CLIPS
// shell underlying jess.
const srcJess = `
func main() int {
  wlSrand(777);
  var nf int = 400;
  var nr int = 280;
  var facts int[] = new int[nf];
  var ra int[] = new int[nr];
  var rb int[] = new int[nr];
  var rc int[] = new int[nr];
  var rd int[] = new int[nr];
  var fired int = 0;
  var total int = 0;

  for (var round int = 0; round < 10; round = round + 1) {
    for (var i int = 0; i < nf; i = i + 1) {
      if (i % 7 == round % 7) { facts[i] = 1; } else { facts[i] = 0; }
    }
    for (var i int = 0; i < nr; i = i + 1) {
      ra[i] = wlRandN(nf);
      rb[i] = wlRandN(nf);
      rc[i] = wlRandN(nf);
      rd[i] = wlRandN(nf);
    }
    var changed bool = true;
    var iters int = 0;
    while (changed && iters < 30) {
      changed = false;
      iters = iters + 1;
      for (var i int = 0; i < nr; i = i + 1) {
        if (facts[ra[i]] == 1 && facts[rb[i]] == 1 && facts[rc[i]] == 1) {
          if (facts[rd[i]] == 0) {
            facts[rd[i]] = 1;
            fired = fired + 1;
            changed = true;
          }
        }
      }
    }
    for (var i int = 0; i < nf; i = i + 1) { total = total + facts[i]; }
  }
  return fired * 100000 + total;
}
`

// srcDB: an in-memory table with binary-search lookups, updates, appends,
// and periodic shellsorts — the load/store- and compare-heavy profile of
// db.
const srcDB = `
var ids int[];
var vals int[];
var used int = 0;

func sortTable() {
  var gap int = used / 2;
  while (gap > 0) {
    for (var i int = gap; i < used; i = i + 1) {
      var kid int = ids[i];
      var kval int = vals[i];
      var j int = i;
      while (j >= gap && ids[j - gap] > kid) {
        ids[j] = ids[j - gap];
        vals[j] = vals[j - gap];
        j = j - gap;
      }
      ids[j] = kid;
      vals[j] = kval;
    }
    gap = gap / 2;
  }
}

func lookup(key int) int {
  var lo int = 0;
  var hi int = used - 1;
  while (lo <= hi) {
    var mid int = (lo + hi) / 2;
    if (ids[mid] == key) { return mid; }
    if (ids[mid] < key) { lo = mid + 1; } else { hi = mid - 1; }
  }
  return -1;
}

func main() int {
  wlSrand(424242);
  var cap int = 1400;
  ids = new int[cap];
  vals = new int[cap];
  used = 0;
  var check int = 0;

  for (var i int = 0; i < 900; i = i + 1) {
    ids[used] = wlRandN(1000000);
    vals[used] = wlRandN(10000);
    used = used + 1;
  }
  sortTable();

  for (var op int = 0; op < 3500; op = op + 1) {
    var kind int = wlRandN(100);
    if (kind < 70) {
      var idx int = lookup(ids[wlRandN(used)]);
      if (idx >= 0) { check = (check + vals[idx]) & 16777215; }
    } else if (kind < 90) {
      var idx int = wlRandN(used);
      vals[idx] = (vals[idx] + op) % 10000;
    } else if (used < cap) {
      ids[used] = wlRandN(1000000);
      vals[used] = op;
      used = used + 1;
      if (used % 64 == 0) { sortTable(); }
    }
  }
  sortTable();
  var sum int = 0;
  for (var i int = 0; i < used; i = i + 1) { sum = (sum + vals[i]) & 16777215; }
  return check * 7 + sum + used;
}
`

// srcJavac: generates random arithmetic expressions as character streams,
// then tokenizes, recursive-descent parses, and evaluates them — the
// call- and branch-heavy compiler-front-end profile of javac.
const srcJavac = `
var src int[];
var srcLen int = 0;
var pos int = 0;

func putCh(c int) { src[srcLen] = c; srcLen = srcLen + 1; }

func genExpr(depth int) {
  if (depth <= 0 || wlRandN(100) < 35) {
    putCh(48 + wlRandN(10));
    return;
  }
  var k int = wlRandN(3);
  if (k == 2) {
    putCh(40);
    genExpr(depth - 1);
    putCh(41);
    return;
  }
  genExpr(depth - 1);
  if (k == 0) { putCh(43); } else { putCh(42); }
  genExpr(depth - 1);
}

func parseExpr() int {
  var v int = parseTerm();
  while (pos < srcLen && src[pos] == 43) {
    pos = pos + 1;
    v = (v + parseTerm()) & 1048575;
  }
  return v;
}

func parseTerm() int {
  var v int = parseAtom();
  while (pos < srcLen && src[pos] == 42) {
    pos = pos + 1;
    v = (v * parseAtom()) & 1048575;
  }
  return v;
}

func parseAtom() int {
  var c int = src[pos];
  if (c == 40) {
    pos = pos + 1;
    var v int = parseExpr();
    pos = pos + 1;
    return v;
  }
  pos = pos + 1;
  return c - 48;
}

func main() int {
  wlSrand(1966);
  src = new int[16384];
  var check int = 0;
  for (var e int = 0; e < 300; e = e + 1) {
    srcLen = 0;
    genExpr(6);
    pos = 0;
    var v int = parseExpr();
    check = (check * 33 + v + srcLen) & 16777215;
  }
  return check;
}
`

// srcMpeg: fixed-point windowed subband synthesis over synthetic PCM —
// integer multiply-accumulate chains with shifts, like the MPEG decoder's
// polyphase filter bank.
const srcMpeg = `
func main() int {
  wlSrand(808);
  var n int = 4096;
  var pcm int[] = new int[n];
  for (var i int = 0; i < n; i = i + 1) {
    pcm[i] = wlRandN(65536) - 32768;
  }
  var taps int = 32;
  var coef int[] = new int[taps];
  for (var j int = 0; j < taps; j = j + 1) {
    coef[j] = wlRandN(512) - 256;
  }
  var sub int = 16;
  var acc int = 0;
  for (var frame int = 0; frame + taps < n; frame = frame + sub) {
    for (var band int = 0; band < sub; band = band + 1) {
      var s int = 0;
      for (var j int = 0; j < taps; j = j + 1) {
        s = s + pcm[frame + j] * coef[(j + band) % taps];
      }
      s = s >> 6;
      var d int = s;
      if (d < 0) { d = -d; }
      acc = (acc + d + band) & 268435455;
    }
  }
  return acc;
}
`

// srcRaytrace: a small sphere-scene raytracer — quadratic intersection
// tests, square roots, and dot-product shading; float-latency bound like
// raytrace/mtrt.
const srcRaytrace = `
var sx float[];
var sy float[];
var sz float[];
var sr float[];
var nspheres int = 0;

func trace(ox float, oy float, oz float, dx float, dy float, dz float) float {
  var bestT float = 1000000.0;
  var bestI int = -1;
  for (var i int = 0; i < nspheres; i = i + 1) {
    var cx float = ox - sx[i];
    var cy float = oy - sy[i];
    var cz float = oz - sz[i];
    var b float = cx*dx + cy*dy + cz*dz;
    var c float = cx*cx + cy*cy + cz*cz - sr[i]*sr[i];
    var disc float = b*b - c;
    if (disc > 0.0) {
      var t float = -b - wlSqrt(disc);
      if (t > 0.001 && t < bestT) { bestT = t; bestI = i; }
    }
  }
  if (bestI < 0) { return 0.0; }
  var px float = ox + dx*bestT;
  var py float = oy + dy*bestT;
  var pz float = oz + dz*bestT;
  var nx float = (px - sx[bestI]) / sr[bestI];
  var ny float = (py - sy[bestI]) / sr[bestI];
  var nz float = (pz - sz[bestI]) / sr[bestI];
  var lambert float = nx*0.5774 + ny*0.5774 + nz*0.5774;
  if (lambert < 0.0) { lambert = 0.0; }
  return 0.1 + 0.9 * lambert;
}

func main() int {
  wlSrand(31415);
  nspheres = 20;
  sx = new float[nspheres];
  sy = new float[nspheres];
  sz = new float[nspheres];
  sr = new float[nspheres];
  for (var i int = 0; i < nspheres; i = i + 1) {
    sx[i] = float(wlRandN(200) - 100) / 10.0;
    sy[i] = float(wlRandN(200) - 100) / 10.0;
    sz[i] = float(wlRandN(100) + 30) / 10.0;
    sr[i] = float(wlRandN(20) + 5) / 10.0;
  }
  var w int = 48;
  var h int = 36;
  var acc int = 0;
  for (var y int = 0; y < h; y = y + 1) {
    for (var x int = 0; x < w; x = x + 1) {
      var dx float = (float(x) - float(w)/2.0) / float(w);
      var dy float = (float(y) - float(h)/2.0) / float(h);
      var dz float = 1.0;
      var inv float = 1.0 / wlSqrt(dx*dx + dy*dy + 1.0);
      var v float = trace(0.0, 0.0, -5.0, dx*inv, dy*inv, dz*inv);
      acc = (acc + int(v * 255.0)) & 268435455;
    }
  }
  return acc;
}
`

// srcJack: a table-driven DFA lexer plus a bracket-matching parser over a
// synthetic grammar stream — the scanning/parsing profile of the jack
// parser generator.
const srcJack = `
func classOf(c int) int {
  if (c >= 97 && c <= 122) { return 0; }
  if (c >= 48 && c <= 57) { return 1; }
  if (c == 32) { return 2; }
  if (c == 40 || c == 91) { return 3; }
  if (c == 41 || c == 93) { return 4; }
  return 5;
}

func main() int {
  wlSrand(5555);
  var n int = 24000;
  var text int[] = new int[n];
  for (var i int = 0; i < n; i = i + 1) {
    var k int = wlRandN(100);
    if (k < 55) { text[i] = 97 + wlRandN(26); }
    else if (k < 70) { text[i] = 48 + wlRandN(10); }
    else if (k < 85) { text[i] = 32; }
    else if (k < 90) { text[i] = 40; }
    else if (k < 95) { text[i] = 41; }
    else { text[i] = 59; }
  }

  // DFA: states x classes -> next state. 4 states, 6 classes.
  var trans int[] = new int[24];
  for (var s int = 0; s < 4; s = s + 1) {
    for (var c int = 0; c < 6; c = c + 1) {
      var nxt int = 0;
      if (c == 0) { nxt = 1; }
      if (c == 1) { if (s == 1) { nxt = 1; } else { nxt = 2; } }
      if (c == 3 || c == 4) { nxt = 3; }
      trans[s * 6 + c] = nxt;
    }
  }

  var counts int[] = new int[4];
  var state int = 0;
  var depth int = 0;
  var maxDepth int = 0;
  var mismatches int = 0;
  for (var i int = 0; i < n; i = i + 1) {
    var cls int = classOf(text[i]);
    state = trans[state * 6 + cls];
    counts[state] = counts[state] + 1;
    if (cls == 3) {
      depth = depth + 1;
      if (depth > maxDepth) { maxDepth = depth; }
    }
    if (cls == 4) {
      if (depth > 0) { depth = depth - 1; } else { mismatches = mismatches + 1; }
    }
  }
  var sum int = 0;
  for (var s int = 0; s < 4; s = s + 1) { sum = sum * 31 + counts[s]; }
  return (sum & 16777215) + maxDepth * 10 + mismatches;
}
`
