package workloads

// Suite 2: numerically intensive programs that benefit from scheduling
// (the paper's Table 7). All are dominated by floating-point latency
// chains the scheduler can overlap.

// srcLinpack: LU decomposition with partial pivoting on a dense matrix,
// followed by forward/back substitution; residual-based checksum.
const srcLinpack = `
var a float[];
var n int = 0;

func at(i int, j int) float { return a[i * n + j]; }
func setAt(i int, j int, v float) { a[i * n + j] = v; }

func main() int {
  wlSrand(101);
  n = 40;
  a = new float[n * n];
  var b float[] = new float[n];
  var orig float[] = new float[n * n];
  var rhs float[] = new float[n];
  var piv int[] = new int[n];

  for (var i int = 0; i < n; i = i + 1) {
    var rowsum float = 0.0;
    for (var j int = 0; j < n; j = j + 1) {
      var v float = float(wlRandN(2000) - 1000) / 500.0;
      setAt(i, j, v);
      orig[i * n + j] = v;
      rowsum = rowsum + wlFabs(v);
    }
    setAt(i, i, at(i, i) + rowsum);        // diagonally dominant
    orig[i * n + i] = at(i, i);
    b[i] = float(wlRandN(1000)) / 250.0;
    rhs[i] = b[i];
  }

  // LU with partial pivoting.
  for (var k int = 0; k < n; k = k + 1) {
    var p int = k;
    var best float = wlFabs(at(k, k));
    for (var i int = k + 1; i < n; i = i + 1) {
      var m float = wlFabs(at(i, k));
      if (m > best) { best = m; p = i; }
    }
    piv[k] = p;
    if (p != k) {
      for (var j int = 0; j < n; j = j + 1) {
        var t float = at(k, j);
        setAt(k, j, at(p, j));
        setAt(p, j, t);
      }
      var tb float = b[k]; b[k] = b[p]; b[p] = tb;
    }
    var d float = at(k, k);
    for (var i int = k + 1; i < n; i = i + 1) {
      var f float = at(i, k) / d;
      setAt(i, k, f);
      for (var j int = k + 1; j < n; j = j + 1) {
        setAt(i, j, at(i, j) - f * at(k, j));
      }
      b[i] = b[i] - f * b[k];
    }
  }

  // Back substitution.
  var x float[] = new float[n];
  for (var i int = n - 1; i >= 0; i = i - 1) {
    var s float = b[i];
    for (var j int = i + 1; j < n; j = j + 1) {
      s = s - at(i, j) * x[j];
    }
    x[i] = s / at(i, i);
  }

  // Residual || A0*x - rhs0 || with the pivoted rhs undone is awkward;
  // instead checksum the solution vector directly.
  var acc int = 0;
  for (var i int = 0; i < n; i = i + 1) {
    acc = (acc * 31 + int(x[i] * 1000.0)) & 268435455;
  }
  return acc;
}
`

// srcPower: a power-network pricing solver in the style of the Olden
// power benchmark: Gauss-Seidel sweeps propagating demands up a feeder
// hierarchy and prices down it.
const srcPower = `
func main() int {
  wlSrand(909);
  var feeders int = 8;
  var laterals int = 16;
  var branches int = 12;
  var nleaf int = feeders * laterals * branches;
  var demand float[] = new float[nleaf];
  var price float[] = new float[nleaf];
  for (var i int = 0; i < nleaf; i = i + 1) {
    demand[i] = 1.0 + float(wlRandN(1000)) / 1000.0;
    price[i] = 1.0;
  }

  var total float = 0.0;
  for (var iter int = 0; iter < 24; iter = iter + 1) {
    // Upsweep: aggregate demand with line losses.
    total = 0.0;
    for (var f int = 0; f < feeders; f = f + 1) {
      var fsum float = 0.0;
      for (var l int = 0; l < laterals; l = l + 1) {
        var lsum float = 0.0;
        var base int = (f * laterals + l) * branches;
        for (var br int = 0; br < branches; br = br + 1) {
          var d float = demand[base + br] / price[base + br];
          lsum = lsum + d + 0.01 * d * d;
        }
        fsum = fsum + lsum * 1.02;
      }
      total = total + fsum;
    }
    // Downsweep: reprice toward equilibrium.
    var target float = float(nleaf);
    var adjust float = total / target;
    for (var i int = 0; i < nleaf; i = i + 1) {
      var p float = price[i];
      p = p + 0.2 * (adjust - p);
      if (p < 0.1) { p = 0.1; }
      price[i] = p;
    }
  }
  var acc int = 0;
  for (var i int = 0; i < nleaf; i = i + 7) {
    acc = (acc * 17 + int(price[i] * 10000.0)) & 268435455;
  }
  return acc + int(total);
}
`

// srcBH: N-body force computation with softened gravity and a leapfrog
// step — the floating-point core of Barnes-Hut.
const srcBH = `
func main() int {
  wlSrand(2718);
  var n int = 48;
  var px float[] = new float[n];
  var py float[] = new float[n];
  var pz float[] = new float[n];
  var vx float[] = new float[n];
  var vy float[] = new float[n];
  var vz float[] = new float[n];
  var m float[] = new float[n];
  for (var i int = 0; i < n; i = i + 1) {
    px[i] = float(wlRandN(2000) - 1000) / 100.0;
    py[i] = float(wlRandN(2000) - 1000) / 100.0;
    pz[i] = float(wlRandN(2000) - 1000) / 100.0;
    m[i] = 1.0 + float(wlRandN(100)) / 50.0;
  }
  var dt float = 0.01;
  var eps float = 0.05;
  for (var step int = 0; step < 8; step = step + 1) {
    for (var i int = 0; i < n; i = i + 1) {
      var ax float = 0.0;
      var ay float = 0.0;
      var az float = 0.0;
      for (var j int = 0; j < n; j = j + 1) {
        if (j != i) {
          var dx float = px[j] - px[i];
          var dy float = py[j] - py[i];
          var dz float = pz[j] - pz[i];
          var r2 float = dx*dx + dy*dy + dz*dz + eps;
          var r float = wlSqrt(r2);
          var f float = m[j] / (r2 * r);
          ax = ax + f * dx;
          ay = ay + f * dy;
          az = az + f * dz;
        }
      }
      vx[i] = vx[i] + ax * dt;
      vy[i] = vy[i] + ay * dt;
      vz[i] = vz[i] + az * dt;
    }
    for (var i int = 0; i < n; i = i + 1) {
      px[i] = px[i] + vx[i] * dt;
      py[i] = py[i] + vy[i] * dt;
      pz[i] = pz[i] + vz[i] * dt;
    }
  }
  var acc int = 0;
  for (var i int = 0; i < n; i = i + 1) {
    acc = (acc * 31 + int(px[i] * 100.0) + int(vy[i] * 100.0)) & 268435455;
  }
  return acc;
}
`

// srcVoronoi: nearest-site assignment of a dense point grid — distance
// computations and compare-heavy floating point, like the Olden voronoi
// kernel's geometric tests.
const srcVoronoi = `
func main() int {
  wlSrand(606);
  var sites int = 36;
  var cx float[] = new float[sites];
  var cy float[] = new float[sites];
  var area int[] = new int[sites];
  for (var i int = 0; i < sites; i = i + 1) {
    cx[i] = float(wlRandN(10000)) / 100.0;
    cy[i] = float(wlRandN(10000)) / 100.0;
  }
  var grid int = 64;
  var cell float = 100.0 / float(grid);
  var borderCells int = 0;
  for (var gy int = 0; gy < grid; gy = gy + 1) {
    for (var gx int = 0; gx < grid; gx = gx + 1) {
      var x float = (float(gx) + 0.5) * cell;
      var y float = (float(gy) + 0.5) * cell;
      var best float = 1000000.0;
      var second float = 1000000.0;
      var bestI int = 0;
      for (var i int = 0; i < sites; i = i + 1) {
        var dx float = x - cx[i];
        var dy float = y - cy[i];
        var d float = dx*dx + dy*dy;
        if (d < best) { second = best; best = d; bestI = i; }
        else if (d < second) { second = d; }
      }
      area[bestI] = area[bestI] + 1;
      if (wlSqrt(second) - wlSqrt(best) < cell) { borderCells = borderCells + 1; }
    }
  }
  var acc int = 0;
  for (var i int = 0; i < sites; i = i + 1) {
    acc = (acc * 13 + area[i]) & 268435455;
  }
  return acc + borderCells;
}
`

// srcAES: an AES-style substitution-permutation network over NIST-style
// test vectors — table lookups, XORs, shifts, byte shuffles.
const srcAES = `
var sbox int[];

func initSbox() {
  sbox = new int[256];
  // A fixed invertible byte permutation (affine-ish over the LCG).
  for (var i int = 0; i < 256; i = i + 1) { sbox[i] = i; }
  wlSrand(1600);
  for (var i int = 255; i > 0; i = i - 1) {
    var j int = wlRandN(i + 1);
    var t int = sbox[i]; sbox[i] = sbox[j]; sbox[j] = t;
  }
}

func encryptBlock(state int[], key int[], rounds int) {
  for (var r int = 0; r < rounds; r = r + 1) {
    // SubBytes + AddRoundKey.
    for (var i int = 0; i < 16; i = i + 1) {
      state[i] = sbox[state[i] & 255] ^ (key[(r * 16 + i) % 64] & 255);
    }
    // ShiftRows (rotate each row of the 4x4 state).
    for (var row int = 1; row < 4; row = row + 1) {
      for (var k int = 0; k < row; k = k + 1) {
        var t int = state[row];
        state[row] = state[row + 4];
        state[row + 4] = state[row + 8];
        state[row + 8] = state[row + 12];
        state[row + 12] = t;
      }
    }
    // MixColumns-ish: GF-free linear mix with shifts.
    for (var col int = 0; col < 4; col = col + 1) {
      var b int = col * 4;
      var a0 int = state[b]; var a1 int = state[b+1];
      var a2 int = state[b+2]; var a3 int = state[b+3];
      state[b]   = (a0 ^ (a1 << 1) ^ a2 ^ a3) & 255;
      state[b+1] = (a0 ^ a1 ^ (a2 << 1) ^ a3) & 255;
      state[b+2] = (a0 ^ a1 ^ a2 ^ (a3 << 1)) & 255;
      state[b+3] = ((a0 << 1) ^ a1 ^ a2 ^ a3) & 255;
    }
  }
}

func main() int {
  initSbox();
  var key int[] = new int[64];
  wlSrand(2001);
  for (var i int = 0; i < 64; i = i + 1) { key[i] = wlRandN(256); }
  var state int[] = new int[16];
  var acc int = 0;
  for (var vec int = 0; vec < 400; vec = vec + 1) {
    for (var i int = 0; i < 16; i = i + 1) {
      state[i] = (vec * 17 + i * 31) & 255;
    }
    encryptBlock(state, key, 10);
    for (var i int = 0; i < 16; i = i + 1) {
      acc = (acc * 31 + state[i]) & 268435455;
    }
  }
  return acc;
}
`

// srcScimark: four scientific kernels — an FFT-style butterfly pass, SOR
// relaxation, Monte Carlo integration, and a dense matrix multiply.
const srcScimark = `
func fftPass(re float[], im float[], n int) {
  var half int = n / 2;
  var span int = 1;
  while (span < n) {
    var step int = span * 2;
    for (var start int = 0; start < span; start = start + 1) {
      var angle float = -3.14159265358979 * float(start) / float(span);
      var wr float = wlCos(angle);
      var wi float = wlSin(angle);
      for (var i int = start; i < n; i = i + step) {
        var j int = i + span;
        if (j < n) {
          var tr float = wr * re[j] - wi * im[j];
          var ti float = wr * im[j] + wi * re[j];
          re[j] = re[i] - tr;
          im[j] = im[i] - ti;
          re[i] = re[i] + tr;
          im[i] = im[i] + ti;
        }
      }
    }
    span = step;
  }
  if (half > 0) { }
}

func main() int {
  wlSrand(1999);
  var acc int = 0;

  // FFT butterfly passes.
  var n int = 256;
  var re float[] = new float[n];
  var im float[] = new float[n];
  for (var i int = 0; i < n; i = i + 1) {
    re[i] = float(wlRandN(2000) - 1000) / 1000.0;
    im[i] = 0.0;
  }
  fftPass(re, im, n);
  for (var i int = 0; i < n; i = i + 8) {
    acc = (acc * 7 + int(re[i] * 100.0)) & 268435455;
  }

  // SOR relaxation on a grid.
  var g int = 40;
  var grid float[] = new float[g * g];
  for (var i int = 0; i < g * g; i = i + 1) {
    grid[i] = float(wlRandN(1000)) / 1000.0;
  }
  var omega float = 1.25;
  for (var it int = 0; it < 16; it = it + 1) {
    for (var y int = 1; y < g - 1; y = y + 1) {
      for (var x int = 1; x < g - 1; x = x + 1) {
        var idx int = y * g + x;
        var v float = 0.25 * (grid[idx - 1] + grid[idx + 1] + grid[idx - g] + grid[idx + g]);
        grid[idx] = grid[idx] + omega * (v - grid[idx]);
      }
    }
  }
  acc = (acc + int(grid[g * g / 2] * 100000.0)) & 268435455;

  // Monte Carlo quarter-circle.
  var hits int = 0;
  var trials int = 8000;
  for (var t int = 0; t < trials; t = t + 1) {
    var x float = float(wlRandN(100000)) / 100000.0;
    var y float = float(wlRandN(100000)) / 100000.0;
    if (x * x + y * y <= 1.0) { hits = hits + 1; }
  }
  acc = (acc + hits) & 268435455;

  // Dense matmul.
  var mN int = 28;
  var ma float[] = new float[mN * mN];
  var mb float[] = new float[mN * mN];
  var mc float[] = new float[mN * mN];
  for (var i int = 0; i < mN * mN; i = i + 1) {
    ma[i] = float(wlRandN(100)) / 10.0;
    mb[i] = float(wlRandN(100)) / 10.0;
  }
  for (var i int = 0; i < mN; i = i + 1) {
    for (var j int = 0; j < mN; j = j + 1) {
      var s float = 0.0;
      for (var k int = 0; k < mN; k = k + 1) {
        s = s + ma[i * mN + k] * mb[k * mN + j];
      }
      mc[i * mN + j] = s;
    }
  }
  for (var i int = 0; i < mN * mN; i = i + 37) {
    acc = (acc * 3 + int(mc[i])) & 268435455;
  }
  return acc;
}
`
