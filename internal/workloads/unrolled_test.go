package workloads

import (
	"testing"

	"schedfilter/internal/core"
	"schedfilter/internal/interp"
	"schedfilter/internal/jit"
	"schedfilter/internal/jolt"
	"schedfilter/internal/machine"
	"schedfilter/internal/sched"
	"schedfilter/internal/sim"
)

// TestWorkloadsUnrolledDifferential re-runs the full differential check
// with the evaluation pipeline's front-end configuration (4-way loop
// unrolling): interpreter, compiled code, and fully scheduled compiled
// code must all still produce the golden checksums.
func TestWorkloadsUnrolledDifferential(t *testing.T) {
	model := machine.Default().Model
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			mod, err := w.CompileWithOptions(jolt.Options{UnrollFactor: 4})
			if err != nil {
				t.Fatal(err)
			}
			want, err := interp.Run(mod, 0)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			if g, ok := golden[w.Name]; ok && want.Ret != g {
				t.Errorf("unrolling changed the checksum: %d, want %d", want.Ret, g)
			}
			prog, err := jit.Compile(mod, jit.DefaultOptions())
			if err != nil {
				t.Fatalf("jit: %v", err)
			}
			core.ApplyFilter(model, prog, core.Always{})
			got, err := sim.Run(prog, sim.Config{})
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			if got.Ret != want.Ret {
				t.Errorf("scheduled unrolled code returned %d, interp says %d", got.Ret, want.Ret)
			}
		})
	}
}

// TestUnrollingGrowsBlockPopulation documents why the evaluation pipeline
// unrolls: it must produce a substantially larger population of blocks
// (and of blocks that benefit from scheduling).
func TestUnrollingGrowsBlockPopulation(t *testing.T) {
	w := ByName("linpack")
	plain, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	unrolled, err := w.CompileWithOptions(jolt.Options{UnrollFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := jit.Compile(plain, jit.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := jit.Compile(unrolled, jit.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumBlocks() <= p1.NumBlocks() {
		t.Errorf("unrolled program has %d blocks, plain has %d", p2.NumBlocks(), p1.NumBlocks())
	}
	if p2.NumInstrs() <= p1.NumInstrs() {
		t.Errorf("unrolled program has %d instrs, plain has %d", p2.NumInstrs(), p1.NumInstrs())
	}
}

// TestWorkloadsSuperblockDifferential is the strongest validation of the
// superblock extension: every workload, compiled with the evaluation
// pipeline, profile-guided superblock-scheduled, must still produce its
// golden checksum — tail duplication, cross-branch code motion, and the
// re-split all preserve semantics.
func TestWorkloadsSuperblockDifferential(t *testing.T) {
	model := machine.Default().Model
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			mod, err := w.CompileWithOptions(jolt.Options{UnrollFactor: 4})
			if err != nil {
				t.Fatal(err)
			}
			prog, err := jit.Compile(mod, jit.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			// Profile on the unscheduled code.
			profRun, err := sim.Run(prog, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			st := core.ApplySuperblocks(model, prog, profRun.ExecCounts, profRun.TakenCounts,
				sched.DefaultSuperblockOptions())
			if st.Traces == 0 {
				t.Errorf("no superblocks formed on %s", w.Name)
			}
			got, err := sim.Run(prog, sim.Config{})
			if err != nil {
				t.Fatalf("superblock-scheduled run: %v", err)
			}
			if g := golden[w.Name]; got.Ret != g {
				t.Errorf("superblock scheduling changed the checksum: %d, want %d", got.Ret, g)
			}
		})
	}
}
