// Package workloads bundles the benchmark programs of the reproduction:
// seven Jolt programs standing in for SPECjvm98 (Table 2 of the paper) and
// six standing in for the paper's second suite of programs that actually
// benefit from instruction scheduling (Table 7). Each stand-in reproduces
// its namesake's computational character — instruction mix, control
// structure, and data access pattern — rather than its exact function.
//
// Every program is deterministic and returns a checksum from main; the
// checksums are golden-tested against both the bytecode interpreter and
// the compiled machine code under every scheduling protocol.
package workloads

import (
	"fmt"

	"schedfilter/internal/bytecode"
	"schedfilter/internal/jolt"
)

// Suite identifies which benchmark suite a workload belongs to.
type Suite int

const (
	// SuiteJVM98 is the SPECjvm98 stand-in suite (paper Table 2).
	SuiteJVM98 Suite = 1
	// SuiteFP is the floating-point "benefits from scheduling" suite
	// (paper Table 7).
	SuiteFP Suite = 2
)

// Workload is one benchmark program.
type Workload struct {
	// Name matches the paper's benchmark name.
	Name string
	// Description is the Table 2/Table 7 characterization.
	Description string
	Suite       Suite
	// Source is the complete Jolt program (prelude included).
	Source string
}

// Compile compiles the workload to verified bytecode.
func (w *Workload) Compile() (*bytecode.Module, error) {
	return w.CompileWithOptions(jolt.Options{})
}

// CompileWithOptions compiles the workload with front-end passes (e.g.
// loop unrolling) enabled.
func (w *Workload) CompileWithOptions(opt jolt.Options) (*bytecode.Module, error) {
	m, err := jolt.CompileWithOptions(w.Source, opt)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return m, nil
}

// prelude is shared utility code: a deterministic LCG and float helpers.
// Names are prefixed to avoid collisions with workload code.
const prelude = `
var wlSeed int = 12345;
func wlSrand(s int) { wlSeed = s; }
func wlRand() int {
  wlSeed = (wlSeed * 1103515245 + 12345) & 2147483647;
  return wlSeed;
}
func wlRandN(n int) int { return wlRand() % n; }
func wlFabs(x float) float { if (x < 0.0) { return -x; } return x; }
func wlSqrt(x float) float {
  if (x <= 0.0) { return 0.0; }
  var g float = x;
  if (g > 1.0) { g = x * 0.5; }
  for (var i int = 0; i < 24; i = i + 1) {
    g = 0.5 * (g + x / g);
  }
  return g;
}
func wlSin(x float) float {
  // Range-reduce to [-pi, pi] then a 7th-order Taylor approximation:
  // plenty for checksum-grade numerics.
  var pi float = 3.14159265358979;
  while (x > pi) { x = x - 2.0 * pi; }
  while (x < -pi) { x = x + 2.0 * pi; }
  var x2 float = x * x;
  return x * (1.0 - x2/6.0 * (1.0 - x2/20.0 * (1.0 - x2/42.0)));
}
func wlCos(x float) float {
  return wlSin(x + 1.5707963267949);
}
`

// All returns every workload, suite 1 first.
func All() []Workload {
	out := append([]Workload(nil), Suite1()...)
	return append(out, Suite2()...)
}

// ByName returns the named workload or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			w := w
			return &w
		}
	}
	return nil
}

// Suite1 returns the SPECjvm98 stand-ins in the paper's order.
func Suite1() []Workload {
	return []Workload{
		{Name: "compress", Suite: SuiteJVM98,
			Description: "LZW-style compression of synthetic text (stand-in for 129.compress)",
			Source:      prelude + srcCompress},
		{Name: "jess", Suite: SuiteJVM98,
			Description: "forward-chaining rule engine over integer facts (stand-in for the CLIPS-based expert system)",
			Source:      prelude + srcJess},
		{Name: "db", Suite: SuiteJVM98,
			Description: "in-memory database: inserts, lookups, updates, shellsort (stand-in for db)",
			Source:      prelude + srcDB},
		{Name: "javac", Suite: SuiteJVM98,
			Description: "recursive-descent expression compiler and evaluator (stand-in for the JDK 1.0.2 javac)",
			Source:      prelude + srcJavac},
		{Name: "mpegaudio", Suite: SuiteJVM98,
			Description: "fixed-point subband filter bank over synthetic PCM (stand-in for the MPEG-3 decoder)",
			Source:      prelude + srcMpeg},
		{Name: "raytrace", Suite: SuiteJVM98,
			Description: "sphere-scene raytracer with quadratic intersection (stand-in for raytrace)",
			Source:      prelude + srcRaytrace},
		{Name: "jack", Suite: SuiteJVM98,
			Description: "table-driven lexer/parser generator pass over synthetic grammars (stand-in for jack)",
			Source:      prelude + srcJack},
	}
}

// Suite2 returns the FP-heavy suite (paper Table 7).
func Suite2() []Workload {
	return []Workload{
		{Name: "linpack", Suite: SuiteFP,
			Description: "LU decomposition with partial pivoting and triangular solve",
			Source:      prelude + srcLinpack},
		{Name: "power", Suite: SuiteFP,
			Description: "power pricing system optimization: Gauss-Seidel sweeps over a network grid",
			Source:      prelude + srcPower},
		{Name: "bh", Suite: SuiteFP,
			Description: "Barnes-Hut style N-body force computation with softened gravity",
			Source:      prelude + srcBH},
		{Name: "voronoi", Suite: SuiteFP,
			Description: "nearest-site Voronoi region assignment over a point grid",
			Source:      prelude + srcVoronoi},
		{Name: "aes", Suite: SuiteFP,
			Description: "AES-style substitution-permutation cipher over NIST-style test vectors",
			Source:      prelude + srcAES},
		{Name: "scimark", Suite: SuiteFP,
			Description: "scientific kernels: FFT butterfly pass, SOR relaxation, Monte Carlo, dense matmul",
			Source:      prelude + srcScimark},
	}
}
