package workloads

import (
	"testing"

	"schedfilter/internal/core"
	"schedfilter/internal/interp"
	"schedfilter/internal/jit"
	"schedfilter/internal/machine"
	"schedfilter/internal/sim"
)

// golden holds the expected checksum of each workload. The values were
// produced by the reference interpreter and are locked here so that any
// semantic drift in the front end, JIT, scheduler, or simulator fails
// loudly.
var golden = map[string]int64{
	"compress":  1574873061,
	"jess":      700579,
	"db":        82483207,
	"javac":     10557343,
	"mpegaudio": 54882582,
	"raytrace":  30478,
	"jack":      7669732,
	"linpack":   163198443,
	"power":     40079856,
	"bh":        105112071,
	"voronoi":   253879986,
	"aes":       8387403,
	"scimark":   145498464,
}

func TestWorkloadsCompile(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if _, err := w.Compile(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	w := ByName("compress")
	m, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, err := interp.Run(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.Run(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ret != b.Ret {
		t.Errorf("nondeterministic checksum: %d vs %d", a.Ret, b.Ret)
	}
}

// TestWorkloadsDifferential is the system's core integration test: for
// every workload, the interpreter, the unscheduled compiled code, and the
// fully scheduled compiled code must agree on the checksum and printed
// output.
func TestWorkloadsDifferential(t *testing.T) {
	model := machine.Default().Model
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			mod, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			want, err := interp.Run(mod, 0)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			t.Logf("%s: interp ret=%d steps=%d", w.Name, want.Ret, want.Steps)
			if g, ok := golden[w.Name]; ok && want.Ret != g {
				t.Errorf("golden checksum drifted: %d, want %d", want.Ret, g)
			}

			prog, err := jit.Compile(mod, jit.DefaultOptions())
			if err != nil {
				t.Fatalf("jit: %v", err)
			}
			ns, err := sim.Run(prog, sim.Config{})
			if err != nil {
				t.Fatalf("sim NS: %v", err)
			}
			if ns.Ret != want.Ret {
				t.Errorf("NS ret = %d, interp says %d", ns.Ret, want.Ret)
			}

			core.ApplyFilter(model, prog, core.Always{})
			ls, err := sim.Run(prog, sim.Config{})
			if err != nil {
				t.Fatalf("sim LS: %v", err)
			}
			if ls.Ret != want.Ret {
				t.Errorf("LS ret = %d, interp says %d", ls.Ret, want.Ret)
			}
			t.Logf("%s: machine instrs=%d blocks=%d", w.Name, ns.DynInstrs, prog.NumBlocks())
		})
	}
}
