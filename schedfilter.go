// Package schedfilter is a from-scratch reproduction of Cavazos & Moss,
// "Inducing Heuristics To Decide Whether To Schedule" (PLDI 2004): learning
// cheap per-basic-block filters that predict whether running an instruction
// scheduler on a block is worth the compile time.
//
// The package is the public facade over the full system:
//
//   - a small Java-flavoured language (Jolt) with a compiler to stack
//     bytecode, standing in for Java;
//   - an optimizing JIT (aggressive inlining, stack-to-register lowering,
//     hazard insertion, linear-scan register allocation) targeting a
//     PowerPC 7410-flavoured machine IR, standing in for Jikes RVM;
//   - a critical-path list scheduler and the simplified machine timing
//     estimator it shares with the training pipeline;
//   - the Ripper rule-induction algorithm, the Table-1 block features,
//     threshold labelling, and leave-one-out cross-validation;
//   - a whole-program cycle simulator for application-running-time
//     measurements, plus thirteen benchmark programs reproducing the
//     computational character of the paper's two suites;
//   - a Jikes-RVM-style adaptive optimization system: baseline tier,
//     sampling profiler, cost/benefit controller, and a concurrent
//     background pool that recompiles hot functions with filter-gated
//     scheduling and hot-swaps them in at safe points.
//
// Quick start:
//
//	prog, _ := schedfilter.CompileSource(src)         // Jolt → machine IR
//	m := schedfilter.NewMachine()
//	filter, _ := schedfilter.TrainDefaultFilter(m, 20) // induce L/N at t=20
//	stats := schedfilter.Schedule(m, prog, filter)     // filtered scheduling
//	res, _ := schedfilter.Execute(prog, m, true)       // timed simulation
//	ad, _ := schedfilter.ExecuteAdaptive(prog,         // adaptive tiers
//	    schedfilter.DefaultAdaptiveConfig(m, filter))
//
// The experiment harness reproducing every table and figure of the paper
// lives behind NewExperimentRunner; `go test -bench .` regenerates them as
// benchmarks, and cmd/schedexp prints them.
package schedfilter

import (
	"fmt"
	"os"

	"schedfilter/internal/adaptive"
	"schedfilter/internal/bytecode"
	"schedfilter/internal/codecache"
	"schedfilter/internal/core"
	"schedfilter/internal/experiments"
	"schedfilter/internal/features"
	"schedfilter/internal/interp"
	"schedfilter/internal/ir"
	"schedfilter/internal/jit"
	"schedfilter/internal/jolt"
	"schedfilter/internal/machine"
	"schedfilter/internal/online"
	"schedfilter/internal/policy"
	"schedfilter/internal/ripper"
	"schedfilter/internal/sched"
	"schedfilter/internal/sim"
	"schedfilter/internal/training"
	"schedfilter/internal/workloads"
)

// Re-exported core types. The facade uses type aliases so values flow
// freely between the public API and the subsystem packages.
type (
	// Machine is the timing model of the target processor.
	Machine = machine.Model
	// Program is JIT-compiled machine code: functions of basic blocks.
	Program = ir.Program
	// Block is one basic block of machine instructions.
	Block = ir.Block
	// Instr is one machine instruction.
	Instr = ir.Instr
	// Module is verified stack bytecode (the JIT's input).
	Module = bytecode.Module
	// FeatureVector is the paper's 13 cheap block features (Table 1).
	FeatureVector = features.Vector
	// Filter decides per block whether to run the list scheduler.
	// Historical name for Policy; the two aliases are interchangeable.
	Filter = core.Filter
	// Policy is the pluggable scheduling decision procedure: Name,
	// Decide (schedule + confidence), Provenance.
	Policy = policy.Policy
	// PolicyKind is one registered policy constructor (the unit of the
	// policy registry, as Target is for machines).
	PolicyKind = policy.Kind
	// PolicyProvenance records where a policy came from.
	PolicyProvenance = policy.Provenance
	// CostPolicy schedules blocks whose estimated cycles under a machine
	// target meet a threshold.
	CostPolicy = policy.CostThreshold
	// PortfolioPolicy arbitrates between member policies by confidence.
	PortfolioPolicy = policy.Portfolio
	// InducedFilter is a learned (Ripper rule set) filter.
	InducedFilter = core.Induced
	// RuleSet is an ordered Ripper rule list.
	RuleSet = ripper.RuleSet
	// ScheduleStats reports what a scheduling pass did.
	ScheduleStats = core.Stats
	// ScheduleResult reports what scheduling did to one block.
	ScheduleResult = sched.Result
	// SimResult is a simulator run's outcome.
	SimResult = sim.Result
	// InterpResult is a bytecode-interpreter run's outcome.
	InterpResult = interp.Result
	// BenchData is one benchmark's collected training instances.
	BenchData = training.BenchData
	// BlockRecord is one raw training instance.
	BlockRecord = training.BlockRecord
	// Workload is one bundled benchmark program.
	Workload = workloads.Workload
	// JITOptions configure compilation.
	JITOptions = jit.Options
	// CompileOptions bundle front-end and JIT configuration for the
	// training/evaluation pipeline.
	CompileOptions = training.Options
	// RipperOptions configure rule induction.
	RipperOptions = ripper.Options
	// ExperimentRunner regenerates the paper's tables and figures.
	ExperimentRunner = experiments.Runner
	// ExperimentConfig parameterizes the harness.
	ExperimentConfig = experiments.Config
	// AdaptiveConfig parameterizes the adaptive optimization system.
	AdaptiveConfig = adaptive.Config
	// AdaptivePolicy is the controller's cost/benefit promotion model
	// (when to recompile a hot function — distinct from the scheduling
	// Policy, which decides whether to schedule each block).
	AdaptivePolicy = adaptive.Promotion
	// AdaptiveResult reports an adaptive run (online + steady state).
	AdaptiveResult = adaptive.Result
	// AdaptiveMetrics are the adaptive controller's per-tier counters.
	AdaptiveMetrics = adaptive.Metrics
	// ProfileSnapshot is one periodic execution-profile sample.
	ProfileSnapshot = sim.Snapshot
	// FnSwap is a safe-point function replacement request.
	FnSwap = sim.FnSwap
	// ScheduleCache is the sharded content-addressed scheduled-block
	// cache the compile service runs on.
	ScheduleCache = codecache.Cache
	// CacheStats is a snapshot of a ScheduleCache's counters.
	CacheStats = codecache.Stats
	// CacheKey is a 256-bit content fingerprint of a block or program.
	CacheKey = codecache.Key
	// ScheduleFlight coalesces concurrent duplicate compile work keyed
	// by content fingerprint: N identical in-flight requests cost one
	// scheduling pass. The zero value is ready to use.
	ScheduleFlight = codecache.Flight
	// ScheduleFlightStats is a snapshot of a ScheduleFlight's counters.
	ScheduleFlightStats = codecache.FlightStats
	// Target is a named, immutable machine model from the target
	// registry. Every layer that needs a machine resolves one of these;
	// the registered Model must not be mutated (Clone it for variants).
	Target = machine.Target
	// OnlineConfig parameterizes the online-learning loop (live label
	// capture, background retraining, shadow-gated promotion).
	OnlineConfig = online.Config
	// OnlineManager runs the loop: sample collection, retraining, and
	// the per-target versioned filter registries the compile server
	// serves from.
	OnlineManager = online.Manager
	// OnlineGate is the shadow-evaluation promotion gate.
	OnlineGate = online.Gate
	// OnlineScore is one filter's shadow evaluation on held-out samples.
	OnlineScore = online.Score
	// FilterVersion is one registered filter version with provenance.
	FilterVersion = online.Version
	// RetrainReport describes one retraining round's outcome.
	RetrainReport = online.RetrainReport
	// OnlineTargetStatus is one target's registry listing plus
	// reservoir gauges.
	OnlineTargetStatus = online.TargetStatus
	// OnlineActiveInfo is one target's serving-filter identity
	// (version + rule hash) — what cluster members compare to decide
	// filter-version convergence.
	OnlineActiveInfo = online.ActiveInfo
	// OnlineMetrics snapshots the online loop's counters.
	OnlineMetrics = online.Metrics
)

// NewOnlineManager starts the online-learning loop: per-target sample
// reservoirs fed by Observe, background Ripper retraining, shadow
// evaluation against the incumbent on a held-out slice, and versioned
// filter hot-swap with rollback. The compile server embeds one when
// booted with online learning enabled.
func NewOnlineManager(cfg OnlineConfig) (*OnlineManager, error) {
	return online.NewManager(cfg)
}

// Fixed protocols (the paper's baselines).
var (
	// AlwaysSchedule is the LS protocol.
	AlwaysSchedule Filter = core.Always{}
	// NeverSchedule is the NS protocol.
	NeverSchedule Filter = core.Never{}
)

// FeatureNames lists the Table-1 feature names in vector order.
var FeatureNames = features.Names[:]

// DefaultTargetName is the registry name of the default machine target
// (the paper's MPC7410 simplified machine simulator).
const DefaultTargetName = machine.DefaultTargetName

// Targets lists every registered machine target, default first.
func Targets() []*Target { return machine.All() }

// TargetByName resolves a registered machine target; the error for an
// unknown name lists the known targets.
func TargetByName(name string) (*Target, error) { return machine.ByName(name) }

// DefaultTarget returns the default machine target (DefaultTargetName).
func DefaultTarget() *Target { return machine.Default() }

// NewMachine returns a fresh, mutable copy of the default target's
// MPC7410-flavoured timing model. Code that only reads the model can use
// DefaultTarget().Model directly and skip the copy.
func NewMachine() *Machine { return machine.Default().Model.Clone() }

// DefaultJITOptions mirror the paper's OptOpt configuration (aggressive
// inlining: callee <= 30, depth <= 6, expansion <= 7x).
func DefaultJITOptions() JITOptions { return jit.DefaultOptions() }

// DefaultRipperOptions mirror the paper's Ripper usage.
func DefaultRipperOptions() RipperOptions { return ripper.DefaultOptions() }

// CompileJolt compiles Jolt source to verified bytecode.
func CompileJolt(src string) (*Module, error) { return jolt.Compile(src) }

// CompileModule JIT-compiles bytecode to machine code (unscheduled).
func CompileModule(m *Module, opts JITOptions) (*Program, error) {
	return jit.Compile(m, opts)
}

// CompileSource compiles Jolt source all the way to machine code with the
// default JIT options.
func CompileSource(src string) (*Program, error) {
	mod, err := jolt.Compile(src)
	if err != nil {
		return nil, err
	}
	return jit.Compile(mod, jit.DefaultOptions())
}

// Interpret runs bytecode in the reference interpreter (the semantic
// oracle). limit bounds executed instructions; 0 means a generous default.
func Interpret(m *Module, limit int64) (*InterpResult, error) {
	return interp.Run(m, limit)
}

// Execute runs compiled machine code on the simulator. With timed set,
// the result includes the cycle count under the machine's issue model.
func Execute(p *Program, m *Machine, timed bool) (*SimResult, error) {
	return sim.Run(p, sim.Config{Timed: timed, Model: m})
}

// ExtractFeatures computes a block's feature vector (one pass).
func ExtractFeatures(b *Block) FeatureVector { return features.ExtractBlock(b) }

// EstimateCost runs the simplified block timing estimator on the block in
// its current order.
func EstimateCost(m *Machine, b *Block) int { return machine.EstimateBlockCost(m, b) }

// ScheduleBlock list-schedules one block in place (critical-path
// scheduling) and reports the before/after cost estimates.
func ScheduleBlock(m *Machine, b *Block) ScheduleResult { return sched.ScheduleBlock(m, b) }

// Schedule applies the filter-driven scheduling pass to a whole program in
// place, timing the pass (features and filter evaluation included).
func Schedule(m *Machine, p *Program, f Filter) ScheduleStats {
	return core.ApplyFilter(m, p, f)
}

// NewScheduleCache returns a content-addressed scheduled-block cache
// bounded to approximately maxWeight words (Σ over entries of
// 1+len(order)); maxWeight <= 0 selects a default. Safe for concurrent
// use; share one cache across every ScheduleWithCache call.
func NewScheduleCache(maxWeight int) *ScheduleCache { return codecache.New(maxWeight) }

// ScheduleWithCache is Schedule backed by a content-addressed cache:
// blocks whose instruction content has been scheduled before (on the same
// machine model, in any program) replay the cached order instead of
// re-running the list scheduler. The returned stats split Scheduled into
// CacheHits and CacheMisses.
func ScheduleWithCache(m *Machine, p *Program, f Filter, c *ScheduleCache) ScheduleStats {
	return core.ApplyFilterCached(m, p, f, c)
}

// ScheduleWithCacheTimed is ScheduleWithCache with per-phase timing on:
// the returned stats' Phases field breaks the pass's wall time into
// cache-lookup, DAG-build, list-schedule, and estimator components. The
// compile server uses it to populate request traces; the breakdown adds
// no allocations to the scheduling hot path.
func ScheduleWithCacheTimed(m *Machine, p *Program, f Filter, c *ScheduleCache) ScheduleStats {
	return core.ApplyFilterCachedTimed(m, p, f, c)
}

// SchedulePhaseTimes is the per-phase breakdown carried by
// ScheduleStats.Phases.
type SchedulePhaseTimes = sched.PhaseTimes

// FingerprintBlock returns the content fingerprint under which a block's
// scheduling result is cached: a hash of its instruction stream and the
// machine model name.
func FingerprintBlock(m *Machine, b *Block) CacheKey {
	return codecache.BlockKey(m.Name, b.Instrs)
}

// FingerprintProgram returns a whole-program content fingerprint (every
// function's every block, plus the model name and a caller-chosen context
// label such as the filter name). The compile service uses it to
// recognize identical compile inputs across requests.
func FingerprintProgram(m *Machine, context string, p *Program) CacheKey {
	return codecache.ProgramKey(m.Name, context, p)
}

// NewRuleFilter wraps a Ripper rule set as a filter.
func NewRuleFilter(rs *RuleSet, label string) *InducedFilter {
	return core.NewInduced(rs, label)
}

// ParseRuleSet reads a rule set in the Figure-4 text format, resolving
// attribute names against the Table-1 feature names.
func ParseRuleSet(text string) (*RuleSet, error) {
	return ripper.Parse(text, FeatureNames)
}

// SizeFilter returns the hand-written baseline filter that schedules
// blocks of at least minLen instructions.
func SizeFilter(minLen int) Filter { return core.SizeThreshold{MinLen: minLen} }

// Schedules is the boolean projection of a policy's Decide, for call
// sites that don't need the confidence.
func Schedules(p Policy, v FeatureVector) bool { return policy.Schedules(p, v) }

// PolicyKinds lists every registered policy kind in registration order.
func PolicyKinds() []*PolicyKind { return policy.Kinds() }

// PolicyFromSpec parses the policy spec mini-language (always|ls,
// never|ns, size:N, cost:N, portfolio:spec+spec+..., plus registered
// kinds) under the named machine target ("" = default target).
func PolicyFromSpec(spec, target string) (Policy, error) { return policy.FromSpec(spec, target) }

// PolicySpecOf renders a policy back to a spec PolicyFromSpec accepts,
// or "" when the policy is not spec-representable (induced rule sets
// serialize as model text instead; see FormatPolicy).
func PolicySpecOf(p Policy) string { return policy.SpecOf(p) }

// NewCostPolicy builds the cost-threshold policy against the named
// machine target ("" = default target).
func NewCostPolicy(target string, minCycles int) (*CostPolicy, error) {
	return policy.NewCostThreshold(target, minCycles)
}

// NewPortfolioPolicy combines member policies under confidence
// arbitration: per block, the most confident member's decision wins.
func NewPortfolioPolicy(members ...Policy) (*PortfolioPolicy, error) {
	return policy.NewPortfolio(members...)
}

// FormatPolicy renders any policy to persistent text (induced filters
// as model-file text, spec-representable policies as a one-line spec
// document); ParsePolicy inverts it.
func FormatPolicy(p Policy) (string, error) { return policy.Format(p) }

// ParsePolicy reads text produced by FormatPolicy under the named
// machine target ("" = default target).
func ParsePolicy(text, target string) (Policy, error) { return policy.Parse(text, target) }

// FormatFilter renders an induced filter as persistent model text: a
// "# filter: <label>" header, a "# target: <name>" header when the
// filter records its training target, plus the rule set in the
// round-trippable full-precision format. ParseFilter inverts it exactly.
func FormatFilter(f *InducedFilter) string { return core.FormatInduced(f) }

// ParseFilter reads model text produced by FormatFilter (or any rule text
// in the Figure-4 format; the label and target headers are optional).
// Attribute names resolve against the Table-1 feature names.
func ParseFilter(text string) (*InducedFilter, error) { return core.ParseInduced(text) }

// FilterID returns a stable content identity for a filter: fixed
// protocols by name, induced filters by label plus a digest of their
// rule text. The compile server folds it into program fingerprints so
// two filter versions that share a display name can never alias in any
// content-addressed cache.
func FilterID(f Filter) string { return core.FilterID(f) }

// PolicyID is FilterID under its policy-layer name: the stable content
// identity every cache, singleflight, and cluster routing key uses.
func PolicyID(p Policy) string { return policy.ID(p) }

// SaveFilter writes the induced filter to path as model text — the file
// the compile-server daemon (cmd/schedserved) boots from.
func SaveFilter(path string, f *InducedFilter) error {
	return os.WriteFile(path, []byte(FormatFilter(f)), 0o644)
}

// LoadFilter reads a model file written by SaveFilter (or schedtrain -o).
// The returned filter's Target metadata is whatever the file recorded; it
// is the caller's job to compare it against the machine actually in use
// (LoadFilterFor does both).
func LoadFilter(path string) (*InducedFilter, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := ParseFilter(string(buf))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// LoadFilterFor is LoadFilter for use under a specific machine target: if
// the model file records a different training target, a warning naming
// both targets is printed to stderr; likewise if the file's "# policy:"
// header declares a kind other than ripper. The filter still loads —
// features are target-independent and the rule text is what it is, so
// applying it is legal, just possibly mistuned; the metadata on the
// result lets callers decide.
func LoadFilterFor(path, target string) (*InducedFilter, error) {
	return policy.LoadInducedFor(path, target)
}

// Workloads returns all bundled benchmark programs (suite 1 then suite 2).
func Workloads() []Workload { return workloads.All() }

// WorkloadsSuite1 returns the SPECjvm98 stand-ins.
func WorkloadsSuite1() []Workload { return workloads.Suite1() }

// WorkloadsSuite2 returns the FP suite that benefits from scheduling.
func WorkloadsSuite2() []Workload { return workloads.Suite2() }

// WorkloadByName returns the named bundled benchmark, or an error.
func WorkloadByName(name string) (*Workload, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("schedfilter: no workload named %q", name)
	}
	return w, nil
}

// DefaultCompileOptions mirror the paper's OptOpt configuration plus
// 4-way loop unrolling (see DESIGN.md).
func DefaultCompileOptions() CompileOptions { return training.DefaultOptions() }

// CollectTrainingData compiles the workload and gathers one training
// instance per basic block (features, both cost estimates, profiled
// execution counts).
func CollectTrainingData(w *Workload, m *Machine, opts CompileOptions) (*BenchData, error) {
	return training.Collect(w, m, opts)
}

// CollectAllTrainingData gathers BenchData for a set of workloads, fanning
// the per-workload compilation and profiling across at most jobs workers
// (jobs <= 0 selects runtime.GOMAXPROCS(0), 1 forces the serial path).
// Results are in workload order and identical at every job count.
func CollectAllTrainingData(ws []Workload, m *Machine, opts CompileOptions, jobs int) ([]*BenchData, error) {
	return training.CollectAllJobs(ws, m, opts, jobs)
}

// TrainFilter induces an L/N filter at threshold t (percent) from the
// given benchmarks' instances.
func TrainFilter(data []*BenchData, t int, opt RipperOptions) *InducedFilter {
	return training.TrainFilter(data, t, opt)
}

// TrainLeaveOneOut induces a filter for the target benchmark from every
// other benchmark's instances (the paper's cross-validation protocol).
func TrainLeaveOneOut(data []*BenchData, target string, t int, opt RipperOptions) *InducedFilter {
	return training.LeaveOneOut(data, target, t, opt)
}

// TrainDefaultFilter collects the suite-1 workloads and induces a single
// filter at threshold t — the "at the factory" filter a JIT would ship.
func TrainDefaultFilter(m *Machine, t int) (*InducedFilter, error) {
	data, err := training.CollectAll(workloads.Suite1(), m, training.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return training.TrainFilter(data, t, ripper.DefaultOptions()), nil
}

// DefaultAdaptivePolicy is the stock cost/benefit promotion policy.
func DefaultAdaptivePolicy() AdaptivePolicy { return adaptive.DefaultPromotion() }

// DefaultAdaptiveConfig configures the adaptive optimization system with
// the stock sampling rate, pool size, and promotion policy. Set Module
// on the result to let the background workers recompile promoted
// functions from bytecode rather than from baseline machine code.
func DefaultAdaptiveConfig(m *Machine, f Filter) AdaptiveConfig {
	return AdaptiveConfig{Model: m, Policy: f}
}

// ExecuteAdaptive runs compiled machine code on the adaptive optimization
// system: it starts in the baseline (unscheduled) tier, samples the
// execution profile, promotes hot functions to filter-gated scheduled
// code on a concurrent background worker pool, hot-swaps them in at safe
// points, and reports both the online run and the post-adaptation steady
// state. The input program is not mutated.
func ExecuteAdaptive(p *Program, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	return adaptive.Run(p, cfg)
}

// NewExperimentRunner builds the harness that regenerates the paper's
// tables and figures.
func NewExperimentRunner(cfg ExperimentConfig) *ExperimentRunner {
	return experiments.NewRunner(cfg)
}

// DefaultExperimentConfig is the configuration used by EXPERIMENTS.md.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }
