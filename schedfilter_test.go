package schedfilter

import (
	"strings"
	"testing"
)

const tinyProgram = `
func main() int {
  var s int = 0;
  for (var i int = 0; i < 64; i = i + 1) { s = s + i * 3; }
  return s;
}
`

func TestCompileSourceAndExecute(t *testing.T) {
	prog, err := CompileSource(tinyProgram)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	res, err := Execute(prog, m, false)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(0); i < 64; i++ {
		want += i * 3
	}
	if res.Ret != want {
		t.Errorf("ret = %d, want %d", res.Ret, want)
	}
}

func TestInterpretMatchesExecute(t *testing.T) {
	mod, err := CompileJolt(tinyProgram)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := Interpret(mod, 0)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileModule(mod, DefaultJITOptions())
	if err != nil {
		t.Fatal(err)
	}
	sv, err := Execute(prog, NewMachine(), false)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Ret != sv.Ret {
		t.Errorf("interp %d != sim %d", iv.Ret, sv.Ret)
	}
}

func TestScheduleProtocols(t *testing.T) {
	m := NewMachine()
	for _, f := range []Filter{NeverSchedule, AlwaysSchedule, SizeFilter(8)} {
		prog, err := CompileSource(tinyProgram)
		if err != nil {
			t.Fatal(err)
		}
		st := Schedule(m, prog, f)
		if st.Blocks == 0 {
			t.Fatalf("%s: no blocks seen", f.Name())
		}
		res, err := Execute(prog, m, true)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if res.Cycles <= 0 {
			t.Errorf("%s: no cycles reported", f.Name())
		}
	}
}

func TestFeatureAndCostAPI(t *testing.T) {
	prog, err := CompileSource(tinyProgram)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	found := false
	for _, fn := range prog.Fns {
		for _, b := range fn.Blocks {
			v := ExtractFeatures(b)
			if v.BBLen() != b.Len() {
				t.Errorf("feature bbLen %d != block len %d", v.BBLen(), b.Len())
			}
			if c := EstimateCost(m, b); c <= 0 && b.Len() > 0 {
				t.Errorf("nonpositive cost %d for nonempty block", c)
			}
			ScheduleBlock(m, b.Clone())
			found = true
		}
	}
	if !found {
		t.Fatal("no blocks compiled")
	}
}

func TestRuleSetRoundTripThroughFacade(t *testing.T) {
	text := "(  10/   1) list :- bbLen >= 12, floats >= 0.25.\n(  90/   4) orig :- .\n"
	rs, err := ParseRuleSet(text)
	if err != nil {
		t.Fatal(err)
	}
	f := NewRuleFilter(rs, "demo")
	if f.Name() != "demo" {
		t.Errorf("name = %q", f.Name())
	}
	var big FeatureVector
	big[0] = 20
	if i := featureIndex("floats"); i > 0 {
		big[i] = 0.5
	}
	if !f.ShouldSchedule(big) {
		t.Error("matching vector rejected")
	}
}

func featureIndex(name string) int {
	for i, n := range FeatureNames {
		if n == name {
			return i
		}
	}
	return -1
}

func TestWorkloadRegistry(t *testing.T) {
	all := Workloads()
	if len(all) != 13 {
		t.Fatalf("want 13 workloads, got %d", len(all))
	}
	if len(WorkloadsSuite1()) != 7 || len(WorkloadsSuite2()) != 6 {
		t.Error("suite sizes wrong")
	}
	w, err := WorkloadByName("compress")
	if err != nil || w.Name != "compress" {
		t.Fatalf("WorkloadByName: %v", err)
	}
	if _, err := WorkloadByName("doom"); err == nil {
		t.Error("unknown workload should error")
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Description == "" {
			t.Errorf("%s: missing description", w.Name)
		}
	}
}

func TestTrainDefaultFilterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("collects the full suite")
	}
	m := NewMachine()
	f, err := TrainDefaultFilter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rules.Rules) == 0 {
		t.Fatal("no rules induced")
	}
	text := f.Rules.String()
	if !strings.Contains(text, "list :-") {
		t.Errorf("unexpected rule format:\n%s", text)
	}
	// The trained filter must be usable on fresh code.
	prog, err := CompileSource(tinyProgram)
	if err != nil {
		t.Fatal(err)
	}
	st := Schedule(m, prog, f)
	if st.Scheduled+st.NotScheduled != st.Blocks {
		t.Errorf("stats do not partition: %+v", st)
	}
}

func TestCollectTrainingDataShape(t *testing.T) {
	w, err := WorkloadByName("javac")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := CollectTrainingData(w, NewMachine(), DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Records) < 50 {
		t.Errorf("only %d records", len(bd.Records))
	}
	var execs int64
	for i := range bd.Records {
		execs += bd.Records[i].Execs
	}
	if execs == 0 {
		t.Error("profile counted no executions")
	}
}

func TestFeatureNamesStable(t *testing.T) {
	want := []string{"bbLen", "branchs", "calls", "loads", "stores", "returns",
		"integers", "floats", "systems", "peis", "gcpoints", "tspoints", "yieldpoints"}
	if len(FeatureNames) != len(want) {
		t.Fatalf("have %d names, want %d", len(FeatureNames), len(want))
	}
	for i := range want {
		if FeatureNames[i] != want[i] {
			t.Errorf("FeatureNames[%d] = %q, want %q", i, FeatureNames[i], want[i])
		}
	}
}
