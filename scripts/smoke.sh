#!/usr/bin/env bash
# Smoke test for the compile server: build the daemon and client, boot
# the daemon, fire two identical schedule requests, and assert that the
# second is served entirely from the scheduled-block cache (no list-
# scheduler runs), cross-checked against the /metrics counters.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SMOKE_PORT:-18923}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
SERVED_PID=""

cleanup() {
  if [ -n "$SERVED_PID" ] && kill -0 "$SERVED_PID" 2>/dev/null; then
    kill -TERM "$SERVED_PID" 2>/dev/null || true
    wait "$SERVED_PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

echo "smoke: building schedserved + schedctl"
go build -o "$TMP/schedserved" ./cmd/schedserved
go build -o "$TMP/schedctl" ./cmd/schedctl

echo "smoke: starting schedserved on $ADDR"
"$TMP/schedserved" -addr "$ADDR" 2>"$TMP/served.log" &
SERVED_PID=$!

for i in $(seq 1 50); do
  if "$TMP/schedctl" -addr "$BASE" health >/dev/null 2>&1; then break; fi
  kill -0 "$SERVED_PID" 2>/dev/null || { cat "$TMP/served.log" >&2; fail "daemon died"; }
  sleep 0.2
  [ "$i" = 50 ] && fail "daemon did not become healthy"
done

echo "smoke: first schedule request (cold cache)"
"$TMP/schedctl" -addr "$BASE" schedule -workload compress -filter LS >"$TMP/r1.json"
grep -q '"cache_misses": [1-9]' "$TMP/r1.json" \
  || fail "first request reported no cache misses: $(cat "$TMP/r1.json")"

echo "smoke: second identical request (must be fully cached)"
"$TMP/schedctl" -addr "$BASE" schedule -workload compress -filter LS >"$TMP/r2.json"
grep -q '"cache_misses": 0' "$TMP/r2.json" \
  || fail "second request was not fully cached: $(cat "$TMP/r2.json")"
grep -q '"cache_hits": 0' "$TMP/r2.json" \
  && fail "second request reported zero cache hits: $(cat "$TMP/r2.json")"

key1=$(grep -o '"program_key": "[0-9a-f]*"' "$TMP/r1.json")
key2=$(grep -o '"program_key": "[0-9a-f]*"' "$TMP/r2.json")
[ -n "$key1" ] && [ "$key1" = "$key2" ] \
  || fail "program fingerprints differ between identical requests: $key1 vs $key2"

echo "smoke: checking /metrics counters"
"$TMP/schedctl" -addr "$BASE" metrics >"$TMP/m1.txt"
runs1=$(awk '/^schedserved_scheduler_runs_total /{print $2}' "$TMP/m1.txt")
[ -n "$runs1" ] || fail "scheduler_runs_total missing from /metrics"

"$TMP/schedctl" -addr "$BASE" schedule -workload compress -filter LS >/dev/null
"$TMP/schedctl" -addr "$BASE" metrics >"$TMP/m2.txt"
runs2=$(awk '/^schedserved_scheduler_runs_total /{print $2}' "$TMP/m2.txt")
[ "$runs1" = "$runs2" ] \
  || fail "scheduler ran on a warm request (runs $runs1 -> $runs2)"
grep -q '^codecache_hits_total [1-9]' "$TMP/m2.txt" \
  || fail "codecache_hits_total not positive"

echo "smoke: graceful shutdown"
kill -TERM "$SERVED_PID"
wait "$SERVED_PID" 2>/dev/null || true
grep -q 'drained, bye' "$TMP/served.log" || fail "daemon did not drain cleanly"
SERVED_PID=""

echo "smoke: OK (second identical request served from cache, scheduler runs flat at $runs2)"
