#!/usr/bin/env bash
# Smoke test for the compile server: build the daemon and client, boot
# the daemon, fire two identical schedule requests, and assert that the
# second is served entirely from the scheduled-block cache (no list-
# scheduler runs), cross-checked against the /metrics counters.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SMOKE_PORT:-18923}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
SERVED_PID=""
DAEMON_PIDS=""

cleanup() {
  for pid in $SERVED_PID $DAEMON_PIDS; do
    if kill -0 "$pid" 2>/dev/null; then
      kill -TERM "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

echo "smoke: building schedserved + schedctl"
go build -o "$TMP/schedserved" ./cmd/schedserved
go build -o "$TMP/schedctl" ./cmd/schedctl

echo "smoke: starting schedserved on $ADDR"
"$TMP/schedserved" -addr "$ADDR" 2>"$TMP/served.log" &
SERVED_PID=$!

for i in $(seq 1 50); do
  if "$TMP/schedctl" -addr "$BASE" health >/dev/null 2>&1; then break; fi
  kill -0 "$SERVED_PID" 2>/dev/null || { cat "$TMP/served.log" >&2; fail "daemon died"; }
  sleep 0.2
  [ "$i" = 50 ] && fail "daemon did not become healthy"
done

echo "smoke: first schedule request (cold cache)"
"$TMP/schedctl" -addr "$BASE" schedule -workload compress -filter LS >"$TMP/r1.json"
grep -q '"cache_misses": [1-9]' "$TMP/r1.json" \
  || fail "first request reported no cache misses: $(cat "$TMP/r1.json")"

echo "smoke: second identical request (must be fully cached)"
"$TMP/schedctl" -addr "$BASE" schedule -workload compress -filter LS >"$TMP/r2.json"
grep -q '"cache_misses": 0' "$TMP/r2.json" \
  || fail "second request was not fully cached: $(cat "$TMP/r2.json")"
grep -q '"cache_hits": 0' "$TMP/r2.json" \
  && fail "second request reported zero cache hits: $(cat "$TMP/r2.json")"

key1=$(grep -o '"program_key": "[0-9a-f]*"' "$TMP/r1.json")
key2=$(grep -o '"program_key": "[0-9a-f]*"' "$TMP/r2.json")
[ -n "$key1" ] && [ "$key1" = "$key2" ] \
  || fail "program fingerprints differ between identical requests: $key1 vs $key2"

echo "smoke: checking /metrics counters"
"$TMP/schedctl" -addr "$BASE" metrics -raw >"$TMP/m1.txt"
runs1=$(awk '/^schedserved_scheduler_runs_total /{print $2}' "$TMP/m1.txt")
[ -n "$runs1" ] || fail "scheduler_runs_total missing from /metrics"

"$TMP/schedctl" -addr "$BASE" schedule -workload compress -filter LS >/dev/null
"$TMP/schedctl" -addr "$BASE" metrics -raw >"$TMP/m2.txt"
runs2=$(awk '/^schedserved_scheduler_runs_total /{print $2}' "$TMP/m2.txt")
[ "$runs1" = "$runs2" ] \
  || fail "scheduler ran on a warm request (runs $runs1 -> $runs2)"
grep -q '^codecache_hits_total [1-9]' "$TMP/m2.txt" \
  || fail "codecache_hits_total not positive"

echo "smoke: traced request round-trips its ID and feeds the phase histograms"
"$TMP/schedctl" -addr "$BASE" trace -workload compress -filter LS -id smoke-trace-1 >"$TMP/tr1.txt" \
  || fail "trace request failed: $(cat "$TMP/tr1.txt")"
grep -q '^trace smoke-trace-1 ' "$TMP/tr1.txt" \
  || fail "X-Sched-Trace ID did not round-trip: $(cat "$TMP/tr1.txt")"
grep -q '  compile ' "$TMP/tr1.txt" \
  || fail "trace breakdown has no compile span: $(cat "$TMP/tr1.txt")"
"$TMP/schedctl" -addr "$BASE" metrics -raw | grep -q 'schedserved_phase_ns_bucket{phase="compile",le="+Inf"} [1-9]' \
  || fail "schedserved_phase_ns histogram saw no compile samples"

echo "smoke: scalar1 target request (separate cache, cold)"
"$TMP/schedctl" -addr "$BASE" schedule -workload compress -filter LS -target scalar1 >"$TMP/r3.json"
grep -q '"target": "scalar1"' "$TMP/r3.json" \
  || fail "scalar1 request not labelled with its target: $(cat "$TMP/r3.json")"
grep -q '"cache_misses": [1-9]' "$TMP/r3.json" \
  || fail "scalar1 request hit the mpc7410 cache: $(cat "$TMP/r3.json")"
key3=$(grep -o '"program_key": "[0-9a-f]*"' "$TMP/r3.json")
[ -n "$key3" ] && [ "$key3" != "$key1" ] \
  || fail "scalar1 program fingerprint collides with mpc7410: $key3"
"$TMP/schedctl" -addr "$BASE" metrics -raw | grep -q 'codecache_target_entries{target="scalar1"} [1-9]' \
  || fail "per-target cache metrics missing scalar1 entries"

echo "smoke: unknown target is rejected"
if "$TMP/schedctl" -addr "$BASE" schedule -workload compress -target z80 >"$TMP/r4.json" 2>"$TMP/r4.err"; then
  fail "unknown target z80 was accepted: $(cat "$TMP/r4.json")"
fi
grep -q 'unknown target' "$TMP/r4.err" \
  || fail "unknown-target rejection lacks a useful error: $(cat "$TMP/r4.err")"

echo "smoke: joltrun on the scalar1 target"
go run ./cmd/joltrun -workload linpack -sched ls -timed -target scalar1 >"$TMP/jolt_scalar1.txt"
go run ./cmd/joltrun -workload linpack -sched ls -timed >"$TMP/jolt_default.txt"
ret_s1=$(grep -o 'ret=[0-9-]*' "$TMP/jolt_scalar1.txt" | head -1)
ret_def=$(grep -o 'ret=[0-9-]*' "$TMP/jolt_default.txt" | head -1)
[ -n "$ret_s1" ] && [ "$ret_s1" = "$ret_def" ] \
  || fail "joltrun checksum differs across targets: $ret_s1 vs $ret_def"
cyc_s1=$(grep -o 'in [0-9]* cycles' "$TMP/jolt_scalar1.txt" | grep -o '[0-9]*')
cyc_def=$(grep -o 'in [0-9]* cycles' "$TMP/jolt_default.txt" | grep -o '[0-9]*')
[ -n "$cyc_s1" ] && [ -n "$cyc_def" ] && [ "$cyc_s1" -ge "$cyc_def" ] \
  || fail "single-issue scalar1 ran faster than dual-issue default ($cyc_s1 < $cyc_def cycles)"

echo "smoke: graceful shutdown"
kill -TERM "$SERVED_PID"
wait "$SERVED_PID" 2>/dev/null || true
grep -q 'drained, bye' "$TMP/served.log" || fail "daemon did not drain cleanly"
SERVED_PID=""

# --- Online learning: loadgen → retrain → activate → rollback, with the
# server staying up (continued 200s) across every hot-swap.
ADDR2="127.0.0.1:${SMOKE_ONLINE_PORT:-18924}"
BASE2="http://$ADDR2"

echo "smoke: starting schedserved -online on $ADDR2"
"$TMP/schedserved" -addr "$ADDR2" -online -online-min 1 2>"$TMP/served2.log" &
SERVED_PID=$!

for i in $(seq 1 50); do
  if "$TMP/schedctl" -addr "$BASE2" health >/dev/null 2>&1; then break; fi
  kill -0 "$SERVED_PID" 2>/dev/null || { cat "$TMP/served2.log" >&2; fail "online daemon died"; }
  sleep 0.2
  [ "$i" = 50 ] && fail "online daemon did not become healthy"
done

echo "smoke: loadgen against the boot filter"
"$TMP/schedctl" -addr "$BASE2" loadgen -workload compress -n 40 -c 4 >"$TMP/lg1.txt"
grep -q 'failed 0' "$TMP/lg1.txt" || fail "loadgen saw failures: $(cat "$TMP/lg1.txt")"
grep -q 'filter mix:.*v1 ' "$TMP/lg1.txt" \
  || fail "loadgen mix does not show boot version v1: $(cat "$TMP/lg1.txt")"

echo "smoke: retrain on the observed traffic"
"$TMP/schedctl" -addr "$BASE2" retrain -target mpc7410 >"$TMP/rt.txt" \
  || fail "retrain failed: $(cat "$TMP/rt.txt")"
grep -q 'skipped' "$TMP/rt.txt" && fail "retrain skipped (no samples): $(cat "$TMP/rt.txt")"

"$TMP/schedctl" -addr "$BASE2" filters list >"$TMP/fl.txt"
nvers=$(grep '^target mpc7410:' "$TMP/fl.txt" | grep -o '[0-9]* versions' | grep -o '[0-9]*')
[ -n "$nvers" ] && [ "$nvers" -ge 2 ] \
  || fail "no candidate registered after retrain: $(cat "$TMP/fl.txt")"

echo "smoke: activating v$nvers and asserting continued 200s"
"$TMP/schedctl" -addr "$BASE2" filters activate -v "$nvers" >"$TMP/act.txt" \
  || fail "activate failed: $(cat "$TMP/act.txt")"
"$TMP/schedctl" -addr "$BASE2" loadgen -workload compress -n 40 -c 4 >"$TMP/lg2.txt"
grep -q 'failed 0' "$TMP/lg2.txt" \
  || fail "requests failed after hot-swap: $(cat "$TMP/lg2.txt")"
grep -q "filter mix:.*v$nvers " "$TMP/lg2.txt" \
  || fail "traffic not served by activated v$nvers: $(cat "$TMP/lg2.txt")"

echo "smoke: rollback restores the previous filter"
"$TMP/schedctl" -addr "$BASE2" filters rollback >"$TMP/rb.txt" \
  || fail "rollback failed: $(cat "$TMP/rb.txt")"
"$TMP/schedctl" -addr "$BASE2" health >/dev/null || fail "server unhealthy after rollback"
"$TMP/schedctl" -addr "$BASE2" metrics -raw | grep -q '^online_rollbacks_total 1' \
  || fail "rollback not counted in /metrics"

echo "smoke: online daemon graceful shutdown"
kill -TERM "$SERVED_PID"
wait "$SERVED_PID" 2>/dev/null || true
grep -q 'drained, bye' "$TMP/served2.log" || fail "online daemon did not drain cleanly"
SERVED_PID=""

# --- Cluster: a schedgate fronting two -online backends. Routing is
# consistent (one workload → one node), killing a backend mid-traffic
# loses zero requests, and a broadcast retrain + activate converges both
# nodes on the same filter version.
ADDR_A="127.0.0.1:${SMOKE_NODE_A_PORT:-18925}"
ADDR_B="127.0.0.1:${SMOKE_NODE_B_PORT:-18926}"
GATE_ADDR="127.0.0.1:${SMOKE_GATE_PORT:-18927}"
GBASE="http://$GATE_ADDR"

echo "smoke: building schedgate"
go build -o "$TMP/schedgate" ./cmd/schedgate

echo "smoke: starting two -online backends and the gateway"
"$TMP/schedserved" -addr "$ADDR_A" -node na -online -online-min 1 2>"$TMP/na.log" &
NODE_A_PID=$!
"$TMP/schedserved" -addr "$ADDR_B" -node nb -online -online-min 1 2>"$TMP/nb.log" &
NODE_B_PID=$!
DAEMON_PIDS="$NODE_A_PID $NODE_B_PID"

for base in "http://$ADDR_A" "http://$ADDR_B"; do
  for i in $(seq 1 50); do
    if "$TMP/schedctl" -addr "$base" health >/dev/null 2>&1; then break; fi
    sleep 0.2
    [ "$i" = 50 ] && fail "backend $base did not become healthy"
  done
done

"$TMP/schedgate" -addr "$GATE_ADDR" -backends "na=http://$ADDR_A,nb=http://$ADDR_B" \
  -check-every 100ms 2>"$TMP/gate.log" &
GATE_PID=$!
DAEMON_PIDS="$DAEMON_PIDS $GATE_PID"

for i in $(seq 1 50); do
  if "$TMP/schedctl" -addr "$GBASE" health >/dev/null 2>&1; then break; fi
  kill -0 "$GATE_PID" 2>/dev/null || { cat "$TMP/gate.log" >&2; fail "gateway died"; }
  sleep 0.2
  [ "$i" = 50 ] && fail "gateway did not become healthy"
done

echo "smoke: routed loadgen through the gateway"
"$TMP/schedctl" -addr "$GBASE" loadgen -workload compress -n 30 -c 4 >"$TMP/glg1.txt"
grep -q 'failed 0' "$TMP/glg1.txt" || fail "gateway loadgen saw failures: $(cat "$TMP/glg1.txt")"
mixline=$(grep 'node mix:' "$TMP/glg1.txt") || fail "no node mix in gateway loadgen: $(cat "$TMP/glg1.txt")"
[ "$(grep -o '×' <<<"$mixline" | wc -l)" = 1 ] \
  || fail "one workload spread across nodes — routing not consistent: $mixline"
primary=$(sed -n 's/^loadgen: node mix: \(n[ab]\) .*/\1/p' "$TMP/glg1.txt")
[ -n "$primary" ] || fail "could not identify compress's primary node: $mixline"
echo "smoke: compress routes to $primary"

echo "smoke: trace round-trip through the gateway"
"$TMP/schedctl" -addr "$GBASE" trace -workload compress -filter LS -id smoke-gw-trace >"$TMP/gtr.txt" \
  || fail "gateway trace request failed: $(cat "$TMP/gtr.txt")"
grep -q '^trace smoke-gw-trace ' "$TMP/gtr.txt" \
  || fail "trace ID did not survive the gateway hop: $(cat "$TMP/gtr.txt")"
grep -q '  route ' "$TMP/gtr.txt" \
  || fail "gateway did not prepend its route span: $(cat "$TMP/gtr.txt")"
grep -q '  compile ' "$TMP/gtr.txt" \
  || fail "backend spans did not survive the gateway relay: $(cat "$TMP/gtr.txt")"
"$TMP/schedctl" -addr "$GBASE" metrics -raw | grep -q 'schedgate_phase_ns_bucket{phase="route",le="+Inf"} [1-9]' \
  || fail "schedgate_phase_ns histogram saw no route samples"

echo "smoke: seeding both backends and waiting for measurement"
for base in "http://$ADDR_A" "http://$ADDR_B"; do
  "$TMP/schedctl" -addr "$base" schedule -workload compress -filter default >/dev/null 2>&1
  "$TMP/schedctl" -addr "$base" schedule -workload db -filter default >/dev/null 2>&1
  # Sample measurement is asynchronous; retraining before the queue
  # drains would see an empty reservoir.
  for i in $(seq 1 100); do
    "$TMP/schedctl" -addr "$base" metrics -raw >"$TMP/om.txt"
    enq=$(awk '/^online_blocks_enqueued_total /{print $2}' "$TMP/om.txt")
    meas=$(awk '/^online_samples_measured_total /{print $2}' "$TMP/om.txt")
    if [ -n "$enq" ] && [ "$enq" -gt 0 ] && [ "$meas" -ge "$enq" ]; then break; fi
    sleep 0.1
    [ "$i" = 100 ] && fail "$base measurement queue never drained ($meas/$enq)"
  done
done

echo "smoke: broadcast retrain + activate through the gateway"
"$TMP/schedctl" -addr "$GBASE" retrain >"$TMP/crt.txt" \
  || fail "cluster retrain failed: $(cat "$TMP/crt.txt")"
grep -q 'cluster retrain: 2 ok, 0 failed' "$TMP/crt.txt" \
  || fail "retrain did not reach both nodes: $(cat "$TMP/crt.txt")"
"$TMP/schedctl" -addr "$GBASE" filters activate -v 2 >"$TMP/cact.txt" \
  || fail "cluster activate failed: $(cat "$TMP/cact.txt")"
grep -q 'cluster activate: 2 ok, 0 failed' "$TMP/cact.txt" \
  || fail "activate did not reach both nodes: $(cat "$TMP/cact.txt")"

"$TMP/schedctl" -addr "$GBASE" cluster >"$TMP/cl.txt"
grep -q 'cluster: 2/2 members healthy' "$TMP/cl.txt" \
  || fail "cluster report wrong member count: $(cat "$TMP/cl.txt")"
grep -q 'target mpc7410: converged' "$TMP/cl.txt" \
  || fail "nodes did not converge after broadcast activate: $(cat "$TMP/cl.txt")"
grep -q 'na=v2 nb=v2' "$TMP/cl.txt" \
  || fail "nodes not both at v2: $(cat "$TMP/cl.txt")"

echo "smoke: killing $primary mid-traffic"
if [ "$primary" = na ]; then KILL_PID=$NODE_A_PID; survivor=nb; else KILL_PID=$NODE_B_PID; survivor=na; fi
kill -KILL "$KILL_PID" 2>/dev/null || true
wait "$KILL_PID" 2>/dev/null || true
"$TMP/schedctl" -addr "$GBASE" loadgen -workload compress -n 30 -c 4 >"$TMP/glg2.txt"
grep -q 'failed 0' "$TMP/glg2.txt" \
  || fail "requests lost after killing $primary: $(cat "$TMP/glg2.txt")"
grep -q "node mix: $survivor ×30" "$TMP/glg2.txt" \
  || fail "traffic did not fail over to $survivor: $(cat "$TMP/glg2.txt")"
"$TMP/schedctl" -addr "$GBASE" cluster >"$TMP/cl2.txt"
grep -q 'cluster: 1/2 members healthy' "$TMP/cl2.txt" \
  || fail "dead node still counted healthy: $(cat "$TMP/cl2.txt")"

echo "smoke: gateway + survivor graceful shutdown"
kill -TERM "$GATE_PID"
wait "$GATE_PID" 2>/dev/null || true
grep -q 'drained, bye' "$TMP/gate.log" || fail "gateway did not drain cleanly"
if [ "$survivor" = na ]; then SURV_PID=$NODE_A_PID; SURV_LOG="$TMP/na.log"; else SURV_PID=$NODE_B_PID; SURV_LOG="$TMP/nb.log"; fi
kill -TERM "$SURV_PID"
wait "$SURV_PID" 2>/dev/null || true
grep -q 'drained, bye' "$SURV_LOG" || fail "surviving backend did not drain cleanly"
DAEMON_PIDS=""

echo "smoke: OK (cache warm at $runs2 scheduler runs; retrain/activate/rollback hot-swapped; cluster routed, converged, and survived a node kill with zero failures)"
